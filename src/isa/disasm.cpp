#include "isa/disasm.hpp"

#include <sstream>

namespace lev::isa {

std::string disasm(const Inst& inst, std::uint64_t pc) {
  std::ostringstream ss;
  auto r = [](int reg) { return "x" + std::to_string(reg); };
  ss << opcName(inst.op);
  const Opc op = inst.op;
  if (op >= Opc::ADD && op <= Opc::SGEU)
    ss << " " << r(inst.rd) << ", " << r(inst.rs1) << ", " << r(inst.rs2);
  else if ((op >= Opc::ADDI && op <= Opc::SLTUI) || op == Opc::JALR)
    ss << " " << r(inst.rd) << ", " << r(inst.rs1) << ", " << inst.imm;
  else if (isLoad(op) || op == Opc::FLUSH)
    ss << " " << r(inst.rd) << ", " << inst.imm << "(" << r(inst.rs1) << ")";
  else if (isStore(op))
    ss << " " << r(inst.rs2) << ", " << inst.imm << "(" << r(inst.rs1) << ")";
  else if (isCondBranch(op))
    ss << " " << r(inst.rs1) << ", " << r(inst.rs2) << ", 0x" << std::hex
       << pc + static_cast<std::uint64_t>(inst.imm);
  else if (op == Opc::JAL)
    ss << " " << r(inst.rd) << ", 0x" << std::hex
       << pc + static_cast<std::uint64_t>(inst.imm);
  else if (op == Opc::RDCYC)
    ss << " " << r(inst.rd);
  return ss.str();
}

std::string disasm(const Program& prog) {
  std::ostringstream ss;
  std::uint64_t pc = prog.textBase;
  for (std::size_t i = 0; i < prog.text.size(); ++i, pc += kInstBytes) {
    ss << std::hex << "0x" << pc << std::dec << ":  "
       << disasm(prog.text[i], pc);
    if (i < prog.hints.size()) {
      const Hint& h = prog.hints[i];
      if (h.overflow) {
        ss << "   !depall";
      } else if (!h.dependeePcs.empty()) {
        ss << "   !deps";
        for (std::size_t d = 0; d < h.dependeePcs.size(); ++d)
          ss << (d ? "," : " ") << std::hex << "0x" << h.dependeePcs[d]
             << std::dec;
      }
    }
    ss << '\n';
  }
  return ss.str();
}

} // namespace lev::isa
