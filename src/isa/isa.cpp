#include "isa/isa.hpp"

#include "support/error.hpp"

namespace lev::isa {

bool isLoad(Opc op) { return op >= Opc::LD1 && op <= Opc::LD8; }
bool isStore(Opc op) { return op >= Opc::ST1 && op <= Opc::ST8; }
bool isMem(Opc op) { return isLoad(op) || isStore(op); }
bool isCondBranch(Opc op) { return op >= Opc::BEQ && op <= Opc::BGEU; }
bool isControl(Opc op) {
  return isCondBranch(op) || op == Opc::JAL || op == Opc::JALR;
}
bool isSpeculationSource(Opc op) { return isCondBranch(op) || op == Opc::JALR; }

bool writesReg(Opc op) {
  if (isStore(op) || isCondBranch(op)) return false;
  switch (op) {
  case Opc::HALT:
  case Opc::NOP:
    return false;
  default:
    return true; // JAL/JALR write rd (possibly x0, handled by rename)
  }
}

bool readsRs1(Opc op) {
  if (isCondBranch(op) || isMem(op)) return true;
  switch (op) {
  case Opc::JAL:
  case Opc::HALT:
  case Opc::NOP:
    return false;
  default:
    return true; // FLUSH reads its address base; RDCYC orders on rs1
  }
}

bool readsRs2(Opc op) {
  if (isCondBranch(op) || isStore(op)) return true;
  // Only register-register ALU ops read rs2.
  return op >= Opc::ADD && op <= Opc::SGEU;
}

int memSize(Opc op) {
  switch (op) {
  case Opc::LD1:
  case Opc::ST1:
    return 1;
  case Opc::LD2:
  case Opc::ST2:
    return 2;
  case Opc::LD4:
  case Opc::ST4:
    return 4;
  case Opc::LD8:
  case Opc::ST8:
    return 8;
  default:
    LEV_UNREACHABLE("memSize of non-memory opcode");
  }
}

const char* opcName(Opc op) {
  switch (op) {
  case Opc::ADD: return "add";
  case Opc::SUB: return "sub";
  case Opc::MUL: return "mul";
  case Opc::DIVS: return "divs";
  case Opc::DIVU: return "divu";
  case Opc::REMS: return "rems";
  case Opc::REMU: return "remu";
  case Opc::AND: return "and";
  case Opc::OR: return "or";
  case Opc::XOR: return "xor";
  case Opc::SLL: return "sll";
  case Opc::SRL: return "srl";
  case Opc::SRA: return "sra";
  case Opc::SLT: return "slt";
  case Opc::SLTU: return "sltu";
  case Opc::SEQ: return "seq";
  case Opc::SNE: return "sne";
  case Opc::SGE: return "sge";
  case Opc::SGEU: return "sgeu";
  case Opc::ADDI: return "addi";
  case Opc::ANDI: return "andi";
  case Opc::ORI: return "ori";
  case Opc::XORI: return "xori";
  case Opc::SLLI: return "slli";
  case Opc::SRLI: return "srli";
  case Opc::SRAI: return "srai";
  case Opc::SLTI: return "slti";
  case Opc::SLTUI: return "sltui";
  case Opc::LD1: return "ld1";
  case Opc::LD2: return "ld2";
  case Opc::LD4: return "ld4";
  case Opc::LD8: return "ld8";
  case Opc::ST1: return "st1";
  case Opc::ST2: return "st2";
  case Opc::ST4: return "st4";
  case Opc::ST8: return "st8";
  case Opc::BEQ: return "beq";
  case Opc::BNE: return "bne";
  case Opc::BLT: return "blt";
  case Opc::BGE: return "bge";
  case Opc::BLTU: return "bltu";
  case Opc::BGEU: return "bgeu";
  case Opc::JAL: return "jal";
  case Opc::JALR: return "jalr";
  case Opc::RDCYC: return "rdcyc";
  case Opc::FLUSH: return "flush";
  case Opc::HALT: return "halt";
  case Opc::NOP: return "nop";
  }
  LEV_UNREACHABLE("bad opcode");
}

std::uint64_t evalAlu(Opc op, std::uint64_t a, std::uint64_t b) {
  const auto sa = static_cast<std::int64_t>(a);
  const auto sb = static_cast<std::int64_t>(b);
  switch (op) {
  case Opc::ADD:
  case Opc::ADDI:
    return a + b;
  case Opc::SUB:
    return a - b;
  case Opc::MUL:
    return a * b;
  case Opc::DIVS:
    if (sb == 0) return ~0ull;
    if (sa == INT64_MIN && sb == -1) return a; // overflow: result = dividend
    return static_cast<std::uint64_t>(sa / sb);
  case Opc::DIVU:
    return b == 0 ? ~0ull : a / b;
  case Opc::REMS:
    if (sb == 0) return a;
    if (sa == INT64_MIN && sb == -1) return 0;
    return static_cast<std::uint64_t>(sa % sb);
  case Opc::REMU:
    return b == 0 ? a : a % b;
  case Opc::AND:
  case Opc::ANDI:
    return a & b;
  case Opc::OR:
  case Opc::ORI:
    return a | b;
  case Opc::XOR:
  case Opc::XORI:
    return a ^ b;
  case Opc::SLL:
  case Opc::SLLI:
    return a << (b & 63);
  case Opc::SRL:
  case Opc::SRLI:
    return a >> (b & 63);
  case Opc::SRA:
  case Opc::SRAI:
    return static_cast<std::uint64_t>(sa >> (b & 63));
  case Opc::SLT:
  case Opc::SLTI:
    return sa < sb ? 1 : 0;
  case Opc::SLTU:
  case Opc::SLTUI:
    return a < b ? 1 : 0;
  case Opc::SEQ:
    return a == b ? 1 : 0;
  case Opc::SNE:
    return a != b ? 1 : 0;
  case Opc::SGE:
    return sa >= sb ? 1 : 0;
  case Opc::SGEU:
    return a >= b ? 1 : 0;
  default:
    LEV_UNREACHABLE("evalAlu of non-ALU opcode");
  }
}

bool evalBranch(Opc op, std::uint64_t a, std::uint64_t b) {
  const auto sa = static_cast<std::int64_t>(a);
  const auto sb = static_cast<std::int64_t>(b);
  switch (op) {
  case Opc::BEQ: return a == b;
  case Opc::BNE: return a != b;
  case Opc::BLT: return sa < sb;
  case Opc::BGE: return sa >= sb;
  case Opc::BLTU: return a < b;
  case Opc::BGEU: return a >= b;
  default:
    LEV_UNREACHABLE("evalBranch of non-branch opcode");
  }
}

} // namespace lev::isa
