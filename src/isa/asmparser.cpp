#include "isa/asmparser.hpp"

#include <algorithm>
#include <map>

#include "support/bits.hpp"
#include "support/strings.hpp"

namespace lev::isa {

namespace {

constexpr std::uint64_t kDataBase = 0x100000;

struct PendingHint {
  std::vector<std::string> labels;
  bool overflow = false;
  bool present = false;
};

class Assembler {
public:
  explicit Assembler(std::string_view src) : lines_(split(src, '\n')) {}

  Program run() {
    collectSymbols();
    emit();
    return std::move(prog_);
  }

private:
  [[noreturn]] void fail(std::size_t lineIdx, const std::string& msg) const {
    throw ParseError(static_cast<int>(lineIdx) + 1, msg);
  }

  static std::string_view stripComment(std::string_view line) {
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    return trim(line);
  }

  bool isDirective(std::string_view line) const {
    return !line.empty() && (line[0] == '.' || line[0] == '!');
  }

  // ---- pass 1: labels, data objects, instruction PCs -------------------
  void collectSymbols() {
    std::uint64_t dataCursor = kDataBase;
    std::uint64_t pc = prog_.textBase;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      std::string_view line = stripComment(lines_[i]);
      if (line.empty()) continue;
      if (line.back() == ':') {
        const std::string label(trim(line.substr(0, line.size() - 1)));
        if (label.empty() || labels_.count(label))
          fail(i, "bad or duplicate label");
        labels_[label] = pc;
        continue;
      }
      if (startsWith(line, ".space")) {
        auto toks = splitWs(line);
        if (toks.size() != 3 && toks.size() != 4) fail(i, "bad .space");
        const std::string name(toks[1]);
        std::int64_t size = 0, align = 8;
        if (!parseInt(toks[2], size) || size <= 0) fail(i, "bad size");
        if (toks.size() == 4 && (!parseInt(toks[3], align) || align <= 0 ||
                                 !isPow2(static_cast<std::uint64_t>(align))))
          fail(i, "bad align");
        dataCursor = alignUp(dataCursor, static_cast<std::uint64_t>(align));
        if (prog_.symbols.count(name)) fail(i, "duplicate symbol " + name);
        prog_.symbols[name] = dataCursor;
        DataSegment seg;
        seg.addr = dataCursor;
        seg.bytes.assign(static_cast<std::size_t>(size), 0);
        segIndex_[name] = prog_.data.size();
        prog_.data.push_back(std::move(seg));
        dataCursor += static_cast<std::uint64_t>(size);
        continue;
      }
      if (isDirective(line)) continue; // handled in pass 2
      pc += kInstBytes; // an instruction (pseudo ops expand 1:1)
    }
  }

  // ---- pass 2: encode ---------------------------------------------------
  void emit() {
    std::uint64_t pc = prog_.textBase;
    PendingHint pending;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      std::string_view line = stripComment(lines_[i]);
      if (line.empty() || line.back() == ':' || startsWith(line, ".space"))
        continue;

      if (startsWith(line, ".entry")) {
        auto toks = splitWs(line);
        if (toks.size() != 2) fail(i, "bad .entry");
        entryLabel_ = std::string(toks[1]);
        continue;
      }
      if (startsWith(line, ".bytes")) {
        auto toks = splitWs(line);
        if (toks.size() != 4) fail(i, "bad .bytes");
        auto segIt = segIndex_.find(std::string(toks[1]));
        if (segIt == segIndex_.end()) fail(i, "unknown object");
        std::int64_t off = 0;
        if (!parseInt(toks[2], off) || off < 0) fail(i, "bad offset");
        auto& bytes = prog_.data[segIt->second].bytes;
        std::string_view hex = toks[3];
        if (hex.size() % 2 != 0) fail(i, "odd hex string");
        for (std::size_t h = 0; h < hex.size(); h += 2) {
          auto nibble = [&](char c) -> int {
            if (c >= '0' && c <= '9') return c - '0';
            if (c >= 'a' && c <= 'f') return c - 'a' + 10;
            if (c >= 'A' && c <= 'F') return c - 'A' + 10;
            fail(i, "bad hex digit");
          };
          const std::size_t idx = static_cast<std::size_t>(off) + h / 2;
          if (idx >= bytes.size()) fail(i, ".bytes out of range");
          bytes[idx] = static_cast<std::uint8_t>(nibble(hex[h]) * 16 +
                                                 nibble(hex[h + 1]));
        }
        continue;
      }
      if (startsWith(line, "!depall")) {
        pending.present = true;
        pending.overflow = true;
        continue;
      }
      if (startsWith(line, "!deps")) {
        pending.present = true;
        pending.overflow = false;
        pending.labels.clear();
        for (auto part : split(line.substr(5), ',')) {
          auto lbl = trim(part);
          if (lbl.empty()) fail(i, "empty label in !deps");
          pending.labels.emplace_back(lbl);
        }
        continue;
      }
      if (isDirective(line)) fail(i, "unknown directive");

      prog_.text.push_back(parseInst(i, line, pc));
      Hint hint;
      if (pending.present) {
        hint.overflow = pending.overflow;
        for (const std::string& lbl : pending.labels) {
          auto it = labels_.find(lbl);
          if (it == labels_.end()) fail(i, "unknown label in !deps: " + lbl);
          hint.dependeePcs.push_back(it->second);
        }
        std::sort(hint.dependeePcs.begin(), hint.dependeePcs.end());
        pending = PendingHint{};
      }
      prog_.hints.push_back(std::move(hint));
      pc += kInstBytes;
    }

    if (!entryLabel_.empty()) {
      auto it = labels_.find(entryLabel_);
      LEV_CHECK(it != labels_.end(), "unknown entry label " + entryLabel_);
      prog_.entry = it->second;
    } else {
      prog_.entry = prog_.textBase;
    }
    // One function range covering everything: hand-written assembly has no
    // function structure, so cross-function conservatism never triggers.
    prog_.funcs.push_back({"asm", prog_.textBase, prog_.textEnd()});
    for (const auto& [name, addr] : labels_) prog_.symbols[name] = addr;
  }

  int parseReg(std::size_t i, std::string_view tok) {
    tok = trim(tok);
    if (tok.size() < 2 || tok[0] != 'x') fail(i, "bad register " + std::string(tok));
    std::int64_t n = 0;
    if (!parseInt(tok.substr(1), n) || n < 0 || n >= kNumRegs)
      fail(i, "bad register " + std::string(tok));
    return static_cast<int>(n);
  }

  std::int64_t parseImm(std::size_t i, std::string_view tok) {
    std::int64_t v = 0;
    if (!parseInt(tok, v)) fail(i, "bad immediate " + std::string(tok));
    return v;
  }

  std::uint64_t resolveTarget(std::size_t i, std::string_view tok) {
    auto it = labels_.find(std::string(trim(tok)));
    if (it == labels_.end()) fail(i, "unknown label " + std::string(tok));
    return it->second;
  }

  /// "sym", "sym+off" or "sym-off" -> absolute address.
  std::int64_t resolveSymbolExpr(std::size_t i, std::string_view tok) {
    tok = trim(tok);
    std::size_t cut = tok.find_first_of("+-", 1);
    std::int64_t off = 0;
    std::string name(tok);
    if (cut != std::string_view::npos) {
      name = std::string(trim(tok.substr(0, cut)));
      off = parseImm(i, tok.substr(cut + 1));
      if (tok[cut] == '-') off = -off;
    }
    auto sym = prog_.symbols.find(name);
    if (sym != prog_.symbols.end())
      return static_cast<std::int64_t>(sym->second) + off;
    auto lbl = labels_.find(name);
    if (lbl != labels_.end()) return static_cast<std::int64_t>(lbl->second) + off;
    fail(i, "unknown symbol " + name);
  }

  Inst parseInst(std::size_t i, std::string_view line, std::uint64_t pc) {
    auto sp = line.find_first_of(" \t");
    const std::string mnem(line.substr(0, sp));
    std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : trim(line.substr(sp));
    auto ops = split(rest, ',');
    for (auto& o : ops) o = trim(o);
    if (ops.size() == 1 && ops[0].empty()) ops.clear();
    auto expect = [&](std::size_t n) {
      if (ops.size() != n)
        fail(i, mnem + ": expected " + std::to_string(n) + " operands");
    };

    static const std::map<std::string, Opc> kRRR = {
        {"add", Opc::ADD},   {"sub", Opc::SUB},   {"mul", Opc::MUL},
        {"divs", Opc::DIVS}, {"divu", Opc::DIVU}, {"rems", Opc::REMS},
        {"remu", Opc::REMU}, {"and", Opc::AND},   {"or", Opc::OR},
        {"xor", Opc::XOR},   {"sll", Opc::SLL},   {"srl", Opc::SRL},
        {"sra", Opc::SRA},   {"slt", Opc::SLT},   {"sltu", Opc::SLTU},
        {"seq", Opc::SEQ},   {"sne", Opc::SNE},   {"sge", Opc::SGE},
        {"sgeu", Opc::SGEU},
    };
    static const std::map<std::string, Opc> kRRI = {
        {"addi", Opc::ADDI}, {"andi", Opc::ANDI},   {"ori", Opc::ORI},
        {"xori", Opc::XORI}, {"slli", Opc::SLLI},   {"srli", Opc::SRLI},
        {"srai", Opc::SRAI}, {"slti", Opc::SLTI},   {"sltui", Opc::SLTUI},
        {"jalr", Opc::JALR},
    };
    static const std::map<std::string, Opc> kLoads = {
        {"ld1", Opc::LD1}, {"ld2", Opc::LD2}, {"ld4", Opc::LD4},
        {"ld8", Opc::LD8}};
    static const std::map<std::string, Opc> kStores = {
        {"st1", Opc::ST1}, {"st2", Opc::ST2}, {"st4", Opc::ST4},
        {"st8", Opc::ST8}};
    static const std::map<std::string, Opc> kBranches = {
        {"beq", Opc::BEQ},   {"bne", Opc::BNE},   {"blt", Opc::BLT},
        {"bge", Opc::BGE},   {"bltu", Opc::BLTU}, {"bgeu", Opc::BGEU}};

    Inst inst;
    if (auto it = kRRR.find(mnem); it != kRRR.end()) {
      expect(3);
      inst.op = it->second;
      inst.rd = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      inst.rs1 = static_cast<std::uint8_t>(parseReg(i, ops[1]));
      inst.rs2 = static_cast<std::uint8_t>(parseReg(i, ops[2]));
      return inst;
    }
    if (auto it = kRRI.find(mnem); it != kRRI.end()) {
      expect(3);
      inst.op = it->second;
      inst.rd = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      inst.rs1 = static_cast<std::uint8_t>(parseReg(i, ops[1]));
      inst.imm = parseImm(i, ops[2]);
      return inst;
    }
    if (auto it = kLoads.find(mnem); it != kLoads.end()) {
      expect(2);
      inst.op = it->second;
      inst.rd = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      parseAddr(i, ops[1], inst);
      return inst;
    }
    if (mnem == "flush") {
      expect(2);
      inst.op = Opc::FLUSH;
      inst.rd = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      parseAddr(i, ops[1], inst);
      return inst;
    }
    if (auto it = kStores.find(mnem); it != kStores.end()) {
      expect(2);
      inst.op = it->second;
      inst.rs2 = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      parseAddr(i, ops[1], inst);
      return inst;
    }
    if (auto it = kBranches.find(mnem); it != kBranches.end()) {
      expect(3);
      inst.op = it->second;
      inst.rs1 = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      inst.rs2 = static_cast<std::uint8_t>(parseReg(i, ops[1]));
      inst.imm = static_cast<std::int64_t>(resolveTarget(i, ops[2])) -
                 static_cast<std::int64_t>(pc);
      return inst;
    }
    if (mnem == "jal") {
      expect(2);
      inst.op = Opc::JAL;
      inst.rd = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      inst.imm = static_cast<std::int64_t>(resolveTarget(i, ops[1])) -
                 static_cast<std::int64_t>(pc);
      return inst;
    }
    if (mnem == "rdcyc") {
      // rdcyc rd [, rs1] — rs1 is an ordering dependency only.
      if (ops.size() != 1 && ops.size() != 2)
        fail(i, "rdcyc: expected 1 or 2 operands");
      inst.op = Opc::RDCYC;
      inst.rd = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      if (ops.size() == 2)
        inst.rs1 = static_cast<std::uint8_t>(parseReg(i, ops[1]));
      return inst;
    }
    if (mnem == "halt") {
      expect(0);
      inst.op = Opc::HALT;
      return inst;
    }
    if (mnem == "nop") {
      expect(0);
      inst.op = Opc::NOP;
      return inst;
    }

    // Pseudo-instructions.
    if (mnem == "li") {
      expect(2);
      inst.op = Opc::ADDI;
      inst.rd = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      inst.rs1 = kRegZero;
      inst.imm = parseImm(i, ops[1]);
      return inst;
    }
    if (mnem == "la") {
      expect(2);
      inst.op = Opc::ADDI;
      inst.rd = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      inst.rs1 = kRegZero;
      inst.imm = resolveSymbolExpr(i, ops[1]);
      return inst;
    }
    if (mnem == "mv") {
      expect(2);
      inst.op = Opc::ADDI;
      inst.rd = static_cast<std::uint8_t>(parseReg(i, ops[0]));
      inst.rs1 = static_cast<std::uint8_t>(parseReg(i, ops[1]));
      return inst;
    }
    if (mnem == "j") {
      expect(1);
      inst.op = Opc::JAL;
      inst.rd = kRegZero;
      inst.imm = static_cast<std::int64_t>(resolveTarget(i, ops[0])) -
                 static_cast<std::int64_t>(pc);
      return inst;
    }
    if (mnem == "call") {
      expect(1);
      inst.op = Opc::JAL;
      inst.rd = kRegRa;
      inst.imm = static_cast<std::int64_t>(resolveTarget(i, ops[0])) -
                 static_cast<std::int64_t>(pc);
      return inst;
    }
    if (mnem == "ret") {
      expect(0);
      inst.op = Opc::JALR;
      inst.rd = kRegZero;
      inst.rs1 = kRegRa;
      return inst;
    }
    fail(i, "unknown mnemonic " + mnem);
  }

  /// "off(xN)" or "sym+off(xN)"-style address operand.
  void parseAddr(std::size_t i, std::string_view tok, Inst& inst) {
    auto open = tok.find('(');
    auto close = tok.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open)
      fail(i, "address must be off(reg)");
    auto offTok = trim(tok.substr(0, open));
    std::int64_t off = 0;
    if (!offTok.empty() && !parseInt(offTok, off))
      off = resolveSymbolExpr(i, offTok);
    inst.imm = off;
    inst.rs1 =
        static_cast<std::uint8_t>(parseReg(i, tok.substr(open + 1, close - open - 1)));
  }

  std::vector<std::string_view> lines_;
  Program prog_;
  std::map<std::string, std::uint64_t> labels_;
  std::map<std::string, std::size_t> segIndex_;
  std::string entryLabel_;
};

} // namespace

Program assemble(std::string_view source) { return Assembler(source).run(); }

} // namespace lev::isa
