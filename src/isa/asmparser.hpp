// Textual assembler for the machine ISA.
//
// Used by the µarch unit tests and the hand-written attack gadgets; compiled
// workloads normally arrive through the backend instead. Syntax summary:
//
//   # comment
//   .entry main                 ; entry label (default: first instruction)
//   .space buf 4096 64          ; reserve a data object (name size [align])
//   .bytes secret 0 4c455600    ; initialize bytes (name offset hexstring)
//
//   main:
//     li   x5, 42               ; pseudo -> addi x5, x0, 42
//     la   x6, buf+8            ; pseudo -> addi x6, x0, <addr>
//     mv   x7, x5               ; pseudo -> addi x7, x5, 0
//     ld8  x8, 16(x6)
//     st8  x8, 0(x6)
//     beq  x8, x0, done
//     j    done                 ; pseudo -> jal x0, done
//     call fn                   ; pseudo -> jal x1, fn
//     ret                       ; pseudo -> jalr x0, x1, 0
//   done:
//     halt
//
// Levioso hint directives (apply to the NEXT instruction):
//   !deps lbl1, lbl2   ; truly depends on the branches at these labels
//   !depall            ; conservative overflow hint
// Instructions without a directive get an empty hint (never restricted),
// which makes hand-written gadget behaviour fully explicit in the tests.
#pragma once

#include <string_view>

#include "isa/program.hpp"

namespace lev::isa {

/// Assemble a program. Throws lev::ParseError with a line number on error.
Program assemble(std::string_view source);

} // namespace lev::isa
