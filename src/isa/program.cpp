#include "isa/program.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lev::isa {

bool Hint::dependsOn(std::uint64_t branchPc) const {
  if (overflow) return true;
  return std::binary_search(dependeePcs.begin(), dependeePcs.end(), branchPc);
}

std::size_t Program::indexOfPc(std::uint64_t pc) const {
  LEV_CHECK(pcInText(pc), "pc outside text segment");
  return static_cast<std::size_t>((pc - textBase) / kInstBytes);
}

const Inst& Program::instAt(std::uint64_t pc) const {
  return text[indexOfPc(pc)];
}

const Hint& Program::hintAt(std::uint64_t pc) const {
  static const Hint kConservative{{}, true};
  if (hints.empty()) return kConservative;
  return hints[indexOfPc(pc)];
}

int Program::funcIndexOfPc(std::uint64_t pc) const {
  for (std::size_t i = 0; i < funcs.size(); ++i)
    if (pc >= funcs[i].startPc && pc < funcs[i].endPc)
      return static_cast<int>(i);
  return -1;
}

std::uint64_t Program::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  LEV_CHECK(it != symbols.end(), "unknown symbol " + name);
  return it->second;
}

} // namespace lev::isa
