// The machine ISA executed by the simulators.
//
// A RISC-V-flavoured research ISA with 32 64-bit integer registers and
// fixed-width 64-bit instructions (8 bytes each; the wide format leaves room
// for a full 32-bit immediate and for Levioso's dependency-hint sideband).
//
// Register convention:
//   x0        hardwired zero
//   x1  (ra)  return address
//   x2  (sp)  stack pointer
//   x3,x4     backend scratch (spill bridging)
//   x10..x17  argument / return registers
//   rest      general purpose
//
// Conditional branches are the speculation sources the Levioso analysis
// annotates. JAL is unconditional (never mispredicts); JALR (returns /
// indirect calls) is predicted via a return-address stack and is treated
// conservatively by every policy.
#pragma once

#include <cstdint>
#include <string>

namespace lev::isa {

inline constexpr int kNumRegs = 32;
inline constexpr int kRegZero = 0;
inline constexpr int kRegRa = 1;
inline constexpr int kRegSp = 2;
inline constexpr int kRegScratch0 = 3;
inline constexpr int kRegScratch1 = 4;
inline constexpr int kRegArg0 = 10; ///< x10..x17 are arguments; x10 returns
inline constexpr int kNumArgRegs = 8;
inline constexpr std::uint64_t kInstBytes = 8;

/// Machine opcodes.
enum class Opc : std::uint8_t {
  // Register-register ALU.
  ADD, SUB, MUL, DIVS, DIVU, REMS, REMU,
  AND, OR, XOR, SLL, SRL, SRA,
  SLT, SLTU, SEQ, SNE, SGE, SGEU,
  // Register-immediate ALU (rs2 unused).
  ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTUI,
  // Loads: rd = zext(mem[rs1 + imm]); stores: mem[rs1 + imm] = rs2.
  LD1, LD2, LD4, LD8,
  ST1, ST2, ST4, ST8,
  // Conditional branches: if (rs1 <cond> rs2) pc += imm.
  BEQ, BNE, BLT, BGE, BLTU, BGEU,
  // Jumps: JAL rd, pc+imm;  JALR rd, (rs1+imm)&~7.
  JAL, JALR,
  // rd = current cycle count (the in-simulation timing probe used by the
  // attack demos, standing in for rdtsc/rdcycle). Reads rs1 purely as an
  // ordering dependency: `rdcyc rd, rs1` does not sample the counter until
  // rs1's producer has executed, which is how attack code timestamps the
  // completion of a specific load.
  RDCYC,
  // Evict the line containing rs1+imm from all cache levels; rd = 0. The
  // clflush equivalent the attack programs use. Takes effect at execute.
  FLUSH,
  // Stop the machine (only when committed).
  HALT,
  NOP,
};

inline constexpr int kNumOpcodes = static_cast<int>(Opc::NOP) + 1;

/// Decoded instruction. `imm` is the branch/jump byte displacement, the
/// memory offset, or the ALU immediate depending on the opcode.
struct Inst {
  Opc op = Opc::NOP;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0; ///< encoded as a signed 32-bit field

  bool operator==(const Inst&) const = default;
};

/// Opcode classification used across the pipeline and the policies.
bool isLoad(Opc op);
bool isStore(Opc op);
bool isMem(Opc op);
/// Conditional branch (BEQ..BGEU).
bool isCondBranch(Opc op);
/// Any control-flow transfer (cond branches, JAL, JALR).
bool isControl(Opc op);
/// Control flow whose outcome/target is not known at decode (cond branches
/// and JALR) — these are the speculation sources.
bool isSpeculationSource(Opc op);
bool writesReg(Opc op);
bool readsRs1(Opc op);
bool readsRs2(Opc op);
/// Memory access size in bytes (loads/stores only).
int memSize(Opc op);

const char* opcName(Opc op);

/// Evaluate a register-register / register-immediate ALU operation.
/// Division by zero follows RISC-V semantics (quotient = all ones,
/// remainder = dividend); shift amounts are masked to 6 bits.
std::uint64_t evalAlu(Opc op, std::uint64_t a, std::uint64_t b);

/// Evaluate a conditional-branch predicate.
bool evalBranch(Opc op, std::uint64_t a, std::uint64_t b);

} // namespace lev::isa
