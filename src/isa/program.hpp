// The loadable program image: text, Levioso annotation sideband, data
// segments, symbols and function ranges.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace lev::isa {

/// Per-instruction Levioso hint, after lowering: dependees are the *PCs* of
/// the conditional branches the instruction truly depends on.
struct Hint {
  std::vector<std::uint64_t> dependeePcs; ///< sorted, unique
  bool overflow = false; ///< conservative: depends on every older branch

  bool neverRestricted() const { return !overflow && dependeePcs.empty(); }
  bool dependsOn(std::uint64_t branchPc) const;
};

/// An initialized data region.
struct DataSegment {
  std::uint64_t addr = 0;
  std::vector<std::uint8_t> bytes;
};

/// Half-open PC range of one function, for the hardware's cross-function
/// conservatism rule (a dependee branch in a *different* function always
/// restricts; see secure/levioso_policy.cpp).
struct FuncRange {
  std::string name;
  std::uint64_t startPc = 0;
  std::uint64_t endPc = 0;
};

/// A complete program as produced by the backend or the assembler.
class Program {
public:
  static constexpr std::uint64_t kDefaultTextBase = 0x1000;
  static constexpr std::uint64_t kDefaultStackTop = 0x7ff0000;

  std::uint64_t textBase = kDefaultTextBase;
  std::uint64_t entry = kDefaultTextBase;
  std::uint64_t stackTop = kDefaultStackTop;
  std::vector<Inst> text;
  /// Parallel to text. Empty when the program carries no hints (plain
  /// assembly, or policies that ignore them).
  std::vector<Hint> hints;
  std::vector<DataSegment> data;
  std::map<std::string, std::uint64_t> symbols;
  std::vector<FuncRange> funcs;

  std::uint64_t textEnd() const {
    return textBase + text.size() * kInstBytes;
  }
  bool pcInText(std::uint64_t pc) const {
    return pc >= textBase && pc < textEnd() && (pc - textBase) % kInstBytes == 0;
  }
  std::size_t indexOfPc(std::uint64_t pc) const;
  const Inst& instAt(std::uint64_t pc) const;
  /// Hint for the instruction at pc; a conservative "overflow" hint is
  /// returned when the program has no hint section (so a Levioso core
  /// running unannotated code degrades to the conservative baseline rather
  /// than executing unsafely).
  const Hint& hintAt(std::uint64_t pc) const;
  /// Index into funcs for a text PC, or -1 when outside all ranges.
  int funcIndexOfPc(std::uint64_t pc) const;

  std::uint64_t symbol(const std::string& name) const;
};

} // namespace lev::isa
