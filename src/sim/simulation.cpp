#include "sim/simulation.hpp"

#include "support/error.hpp"

namespace lev::sim {

Simulation::Simulation(const isa::Program& prog, const uarch::CoreConfig& cfg,
                       const std::string& policyName)
    : policyName_(policyName), policy_(secure::makePolicy(policyName)),
      ownedPredecode_(std::make_unique<uarch::PredecodedProgram>(prog)),
      core_(*ownedPredecode_, cfg, *policy_, stats_) {}

Simulation::Simulation(const isa::Program& prog, const uarch::CoreConfig& cfg,
                       std::unique_ptr<uarch::SpeculationPolicy> policy)
    : policyName_(policy->name()), policy_(std::move(policy)),
      ownedPredecode_(std::make_unique<uarch::PredecodedProgram>(prog)),
      core_(*ownedPredecode_, cfg, *policy_, stats_) {}

Simulation::Simulation(const uarch::PredecodedProgram& prog,
                       const uarch::CoreConfig& cfg,
                       const std::string& policyName)
    : policyName_(policyName), policy_(secure::makePolicy(policyName)),
      core_(prog, cfg, *policy_, stats_) {}

Simulation::Simulation(const uarch::PredecodedProgram& prog,
                       const uarch::CoreConfig& cfg,
                       std::unique_ptr<uarch::SpeculationPolicy> policy)
    : policyName_(policy->name()), policy_(std::move(policy)),
      core_(prog, cfg, *policy_, stats_) {}

uarch::RunExit Simulation::run(std::uint64_t maxCycles,
                               std::int64_t deadlineMicros) {
  return core_.run(maxCycles, deadlineMicros);
}

RunSummary runOnce(const isa::Program& prog, const uarch::CoreConfig& cfg,
                   const std::string& policyName, std::uint64_t maxCycles) {
  Simulation simulation(prog, cfg, policyName);
  const uarch::RunExit exit = simulation.run(maxCycles);
  if (exit != uarch::RunExit::Halted)
    throw SimError("run under policy '" + policyName +
                   "' hit the cycle limit");
  RunSummary s;
  s.policy = policyName;
  s.cycles = simulation.core().cycle();
  s.insts = simulation.core().committedInsts();
  s.ipc = s.cycles == 0 ? 0.0
                        : static_cast<double>(s.insts) /
                              static_cast<double>(s.cycles);
  s.loadDelayCycles = simulation.stats().get("policy.loadDelayCycles");
  s.execDelayCycles = simulation.stats().get("policy.execDelayCycles");
  s.mispredicts = simulation.stats().get("bp.mispredicts");
  return s;
}

} // namespace lev::sim
