#include "sim/sampling.hpp"

#include <chrono>
#include <optional>

#include "secure/policies.hpp"
#include "support/error.hpp"
#include "uarch/archstate.hpp"
#include "uarch/branchpred.hpp"
#include "uarch/funcsim.hpp"

namespace lev::sim {

namespace {

/// Fold one detailed window's counters into the accumulated set. Counters
/// sum, except histogram maxima ("hist.*.max"), which take the max — a
/// summed max would claim a delay no single instruction ever saw.
void accumulateStats(StatSet& into, const StatSet& window) {
  for (const auto& [name, value] : window.all()) {
    std::int64_t& slot = into.counter(name);
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".max") == 0)
      slot = std::max(slot, value);
    else
      slot += value;
  }
}

} // namespace

SampleOptions parseSampleSpec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size())
    throw Error("bad --sample spec '" + spec + "' (expected N:M)");
  SampleOptions opts;
  try {
    std::size_t pos = 0;
    opts.periodInsts = std::stoull(spec.substr(0, colon), &pos);
    if (pos != colon) throw Error("");
    const std::string m = spec.substr(colon + 1);
    opts.windowInsts = std::stoull(m, &pos);
    if (pos != m.size()) throw Error("");
  } catch (const std::exception&) {
    throw Error("bad --sample spec '" + spec + "' (expected N:M)");
  }
  if (opts.periodInsts == 0)
    throw Error("bad --sample spec '" + spec + "': period must be > 0");
  if (opts.windowInsts == 0)
    throw Error("bad --sample spec '" + spec + "': window must be > 0");
  if (opts.windowInsts > opts.periodInsts)
    throw Error("bad --sample spec '" + spec +
                "': window must not exceed the period (windows may not "
                "overlap)");
  return opts;
}

SampleResult runSampled(const uarch::PredecodedProgram& prog,
                        const uarch::CoreConfig& cfg,
                        const std::string& policyName,
                        const SampleOptions& opts, std::uint64_t maxCycles,
                        std::int64_t deadlineMicros) {
  if (opts.periodInsts == 0)
    throw Error("runSampled called with sampling disabled (period 0)");
  using clock = std::chrono::steady_clock;
  const auto deadline =
      deadlineMicros > 0
          ? clock::now() + std::chrono::microseconds(deadlineMicros)
          : clock::time_point{};

  uarch::FuncSim fs(prog.program());
  StatSet warmStats; // the warm-up structures' counters are never reported
  std::optional<uarch::BranchPredictor> warm;
  if (opts.warmPredictor) {
    warm.emplace(cfg.bp, warmStats);
    fs.setPredictorWarming(&*warm);
  }
  std::optional<uarch::MemHierarchy> warmHier;
  if (opts.warmCaches) {
    warmHier.emplace(cfg.mem, warmStats);
    fs.setCacheWarming(&*warmHier);
  }

  SampleResult r;
  uarch::ArchCheckpoint cp;
  bool covered = true; // did every instruction land in a detailed window?

  while (!fs.halted()) {
    // Detailed window from the current architectural state.
    fs.snapshot(cp);
    auto policy = secure::makePolicy(policyName);
    StatSet winStats;
    uarch::O3Core core(prog, cfg, *policy, winStats, &cp);
    if (warm.has_value()) core.warmPredictor(*warm);
    if (warmHier.has_value()) core.warmHierarchy(*warmHier);
    while (!core.halted() && core.committedInsts() < opts.windowInsts) {
      const std::uint64_t detailed = r.sampledCycles + core.cycle();
      if (detailed >= maxCycles)
        throw SimError("sampled run under policy '" + policyName +
                       "' hit the detailed-cycle limit");
      if (deadlineMicros > 0 && (detailed & 8191) == 0 &&
          clock::now() >= deadline)
        throw DeadlineError("sampled run under policy '" + policyName +
                            "' exceeded its " +
                            std::to_string(deadlineMicros) + "us deadline");
      core.tick();
    }
    core.dumpMetrics();
    r.sampledCycles += core.cycle();
    r.sampledInsts += core.committedInsts();
    ++r.windows;
    accumulateStats(r.stats, winStats);

    // Replay the window architecturally on the fast path (the detailed core
    // never feeds state back), then skip the unsampled rest of the period.
    fs.runInsts(core.committedInsts());
    if (core.halted() || fs.halted()) break;
    const std::uint64_t skip = opts.periodInsts - core.committedInsts();
    if (skip > 0 && fs.runInsts(skip) > 0) covered = false;
  }

  r.totalInsts = fs.instsExecuted();
  r.exact = covered && r.sampledInsts == r.totalInsts;
  if (r.exact) {
    r.estimatedCycles = r.sampledCycles;
  } else if (r.sampledInsts > 0) {
    // 128-bit intermediate: cycles * insts overflows u64 on long workloads.
    r.estimatedCycles = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(r.sampledCycles) * r.totalInsts /
        r.sampledInsts);
  }
  r.stats.counter("sim.cycles") = static_cast<std::int64_t>(r.estimatedCycles);
  r.stats.counter("sample.windows") = static_cast<std::int64_t>(r.windows);
  r.stats.counter("sample.detailedInsts") =
      static_cast<std::int64_t>(r.sampledInsts);
  r.stats.counter("sample.detailedCycles") =
      static_cast<std::int64_t>(r.sampledCycles);
  r.stats.counter("sample.totalInsts") =
      static_cast<std::int64_t>(r.totalInsts);
  return r;
}

} // namespace lev::sim
