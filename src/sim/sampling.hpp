// Checkpointed sampled simulation (SMARTS-style, Wunderlich et al. ISCA'03;
// docs/PERF.md).
//
// The exact path simulates every dynamic instruction on the detailed O3
// core. For long workloads most of those cycles never feed a figure — the
// per-policy overhead ratios converge long before the run ends. Sampling
// exploits that: a fast *functional* simulator (FuncSim) executes the
// program architecturally, and every `periodInsts` instructions it
// snapshots the architectural state (ArchCheckpoint) and hands the O3 core
// a detailed window of `windowInsts` instructions starting there. The
// run's cycle count is then estimated as
//
//   estimatedCycles = sampledCycles * totalInsts / sampledInsts
//
// i.e. the detailed windows' measured CPI extrapolated over the whole
// dynamic instruction stream.
//
// Caveats (EXPERIMENTS.md): the estimate is approximate — windows start
// with cold caches (the branch predictor IS warmed, architecturally,
// by the fast-forward when `warmPredictor` is on), RDCYC reads
// instruction counts during fast-forward, and the accumulated stat
// counters cover only the detailed windows. Sampled results are therefore
// never cached and always flagged "sampled" in reports. With
// `windowInsts` >= the whole program (first window swallows the run) the
// estimate degenerates to the exact cycle count.
#pragma once

#include <cstdint>
#include <string>

#include "support/stats.hpp"
#include "uarch/core.hpp"
#include "uarch/predecode.hpp"

namespace lev::sim {

/// Sampling regime: detailed windows of `windowInsts` instructions, one
/// window every `periodInsts` instructions. Disabled when periodInsts == 0.
struct SampleOptions {
  std::uint64_t periodInsts = 0; ///< N in --sample N:M (0 = exact mode)
  std::uint64_t windowInsts = 0; ///< M in --sample N:M
  /// Train a branch predictor architecturally during fast-forward and seed
  /// each window's predictor from it.
  bool warmPredictor = true;
  /// Touch a cache hierarchy with the architectural access stream during
  /// fast-forward and seed each window's caches from it. Without this every
  /// window starts all-miss, which wildly overstates the overhead of
  /// miss-sensitive policies (fence/dom/spt).
  bool warmCaches = true;
};

/// What one sampled run yields.
struct SampleResult {
  std::uint64_t estimatedCycles = 0; ///< extrapolated whole-run cycles
  std::uint64_t totalInsts = 0;      ///< architectural instruction count
  std::uint64_t sampledInsts = 0;    ///< instructions simulated in detail
  std::uint64_t sampledCycles = 0;   ///< detailed cycles actually simulated
  std::uint64_t windows = 0;         ///< detailed windows run
  /// True when the windows covered every instruction (the estimate is the
  /// exact cycle count).
  bool exact = false;
  /// Stat counters accumulated across the detailed windows only, plus the
  /// "sample.*" bookkeeping counters and "sim.cycles" = estimatedCycles.
  StatSet stats;
};

/// Parse "N:M" (e.g. "100000:2000") into options. Throws lev::Error on
/// malformed input, zero M, or M > N (windows may not overlap).
SampleOptions parseSampleSpec(const std::string& spec);

/// Run `policyName` over the program with sampling. `maxCycles` bounds the
/// *detailed* cycles accumulated across windows (the analogue of the exact
/// path's cycle limit; SimError past it); `deadlineMicros` > 0 bounds host
/// wall time for the whole sampled run (DeadlineError past it).
SampleResult runSampled(const uarch::PredecodedProgram& prog,
                        const uarch::CoreConfig& cfg,
                        const std::string& policyName,
                        const SampleOptions& opts,
                        std::uint64_t maxCycles = 4'000'000'000ull,
                        std::int64_t deadlineMicros = 0);

} // namespace lev::sim
