// Simulation facade: bundles a program, a policy instance, a stat set and a
// core, and provides the one-call experiment helper the benches use.
#pragma once

#include <memory>
#include <string>

#include "isa/program.hpp"
#include "secure/policies.hpp"
#include "support/stats.hpp"
#include "uarch/core.hpp"

namespace lev::sim {

/// Owns everything one run needs. The program must outlive the Simulation.
class Simulation {
public:
  Simulation(const isa::Program& prog, const uarch::CoreConfig& cfg,
             const std::string& policyName);

  /// Run under a caller-built policy instance (e.g. a decorated/wrapped
  /// policy — src/fuzz's oracle). The name reported by policyName() is the
  /// instance's name().
  Simulation(const isa::Program& prog, const uarch::CoreConfig& cfg,
             std::unique_ptr<uarch::SpeculationPolicy> policy);

  /// Share a caller-owned predecode across runs (the sweep path: one
  /// PredecodedProgram serves all policies of a grid point, docs/PERF.md).
  /// `prog` — and the Program it wraps — must outlive the Simulation.
  Simulation(const uarch::PredecodedProgram& prog,
             const uarch::CoreConfig& cfg, const std::string& policyName);
  Simulation(const uarch::PredecodedProgram& prog,
             const uarch::CoreConfig& cfg,
             std::unique_ptr<uarch::SpeculationPolicy> policy);

  /// Run to completion; a positive deadlineMicros bounds host wall time
  /// (uarch::RunExit::Deadline on overrun, see O3Core::run).
  uarch::RunExit run(std::uint64_t maxCycles = 100'000'000,
                     std::int64_t deadlineMicros = 0);

  /// Attach a pipeline event ring (`src/trace/`): every fetch/issue/commit/
  /// squash and policy delay/release decision is recorded until the run
  /// ends. Pass nullptr to detach. The buffer must outlive the run.
  void setTraceBuffer(trace::TraceBuffer* buf) { core_.setTraceBuffer(buf); }

  uarch::O3Core& core() { return core_; }
  const uarch::O3Core& core() const { return core_; }
  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }
  const std::string& policyName() const { return policyName_; }

private:
  std::string policyName_;
  std::unique_ptr<uarch::SpeculationPolicy> policy_;
  StatSet stats_;
  /// Set by the Program-taking constructors only; the PredecodedProgram-
  /// taking ones borrow the caller's. Declared before core_ (which keeps a
  /// reference into it).
  std::unique_ptr<uarch::PredecodedProgram> ownedPredecode_;
  uarch::O3Core core_;
};

/// Headline numbers of one finished run.
struct RunSummary {
  std::string policy;
  std::uint64_t cycles = 0;
  std::uint64_t insts = 0;
  double ipc = 0.0;
  std::int64_t loadDelayCycles = 0;
  std::int64_t execDelayCycles = 0;
  std::int64_t mispredicts = 0;
};

/// Run a program to completion under a policy and summarize. Throws
/// lev::SimError if the run hits the cycle limit.
RunSummary runOnce(const isa::Program& prog, const uarch::CoreConfig& cfg,
                   const std::string& policyName,
                   std::uint64_t maxCycles = 100'000'000);

/// Overhead of `cycles` relative to a baseline cycle count, as a fraction
/// (0.23 = 23% slower).
inline double overhead(std::uint64_t cycles, std::uint64_t baselineCycles) {
  return static_cast<double>(cycles) / static_cast<double>(baselineCycles) -
         1.0;
}

} // namespace lev::sim
