// Thin RAII wrappers over POSIX TCP sockets for the serve subsystem
// (docs/SERVE.md). Deliberately minimal: blocking stream sockets, a
// listener, and helpers that loop over partial reads/writes — the daemon's
// event loop does its own poll()ing on the raw fds.
//
// Fault injection (docs/ROBUSTNESS.md): readSome and writeAll arm the
// "net.read" / "net.write" sites before touching the kernel; a fired fault
// behaves exactly like an I/O error on the wire (TransientError), so every
// failure path a flaky network can take is drivable deterministically from
// LEVIOSO_FAULTS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lev::sock {

/// "host:port" -> pair; throws lev::Error on a malformed endpoint.
void parseEndpoint(const std::string& endpoint, std::string& host,
                   std::uint16_t& port);

/// Owns one socket fd; closes on destruction. Move-only.
class Fd {
public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Release ownership without closing (handing the fd to a child).
  int release();
  void close();

private:
  int fd_ = -1;
};

/// A bound + listening TCP socket (IPv4 loopback-or-any).
class Listener {
public:
  /// Bind and listen on `port` (0 = pick an ephemeral port); throws
  /// lev::Error on failure. SO_REUSEADDR is set so restarts don't trip
  /// over TIME_WAIT.
  static Listener open(std::uint16_t port, int backlog = 64);

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }

  /// Accept one connection (blocking); returns the connected fd. Throws
  /// lev::Error on failure.
  int acceptFd();

  void close() { fd_.close(); }

private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Connect to host:port (blocking); throws lev::Error on failure. A
/// nonzero `timeoutMicros` caps the connect itself AND every later read
/// and write on the returned fd (SO_SNDTIMEO / SO_RCVTIMEO) — a half-open
/// peer then surfaces as a TransientError timeout instead of a hang
/// (levioso-top --timeout-ms rides on this).
Fd connectTo(const std::string& host, std::uint16_t port,
             std::int64_t timeoutMicros = 0);

/// Read up to `n` bytes (blocking). Returns the byte count, 0 on orderly
/// peer shutdown. Throws TransientError on an I/O error, an injected
/// "net.read" fault, or a receive-timeout expiry (connectTo's
/// timeoutMicros); retries EINTR itself.
std::size_t readSome(int fd, char* buf, std::size_t n);

/// Write all `n` bytes (blocking, loops over partial writes). Throws
/// TransientError on an I/O error, a closed peer, or an injected
/// "net.write" fault.
void writeAll(int fd, const char* data, std::size_t n);
inline void writeAll(int fd, const std::string& s) {
  writeAll(fd, s.data(), s.size());
}

/// One send() of up to `n` bytes; returns how many were accepted (can be
/// less than n). For callers that poll() for writability and must not
/// block behind a stalled peer (the daemon's buffered writes). Throws
/// TransientError on an I/O error or an injected "net.write" fault.
///
/// CAVEAT: on a blocking fd whose kernel buffer is FULL this still blocks
/// (send() waits for space even when poll() did not report writability) —
/// use writeSomeNonblocking from single-threaded event loops.
std::size_t writeSome(int fd, const char* data, std::size_t n);

/// writeSome that can never block: send(MSG_DONTWAIT). Returns 0 when the
/// kernel buffer is full (EAGAIN) — the caller keeps its user-space buffer
/// and retries on the next POLLOUT. Same error/fault behavior as
/// writeSome otherwise.
std::size_t writeSomeNonblocking(int fd, const char* data, std::size_t n);

} // namespace lev::sock
