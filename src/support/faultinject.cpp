#include "support/faultinject.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace lev::faultinject {

namespace {

enum class Trigger { Every, Once, Rate };

struct Site {
  std::string name;
  std::string spec; ///< canonical trigger text
  Trigger trigger = Trigger::Every;
  std::uint64_t n = 1;      ///< every/once period or ordinal
  double rate = 0.0;        ///< rate trigger probability
  std::uint64_t seed = 0;   ///< rate trigger seed
  std::uint64_t arms = 0;
  std::uint64_t fires = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<Site> sites; ///< spec order; linear scan (a handful of sites)
  bool envLoaded = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> g_enabled{false};

std::uint64_t fnv1a64(std::string_view s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Full-avalanche 64-bit finalizer (the murmur3/splitmix constants). FNV
/// alone is NOT enough here: its single trailing multiply barely moves the
/// high bits for small input changes, so seed 7 vs seed 8 would produce
/// near-identical fire patterns.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Deterministic per-arming decision for rate triggers: hash the site name,
/// the arming ordinal and the seed into [0, 1) and compare against P.
bool rateFires(const Site& s, std::uint64_t arm) {
  std::uint64_t h = fnv1a64(s.name, 0xcbf29ce484222325ull);
  h = mix64(h ^ mix64(arm ^ s.seed * 0x9e3779b97f4a7c15ull));
  const double unit =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  return unit < s.rate;
}

[[noreturn]] void badSpec(const std::string& clause, const std::string& why) {
  throw Error("LEVIOSO_FAULTS: bad clause '" + clause + "': " + why);
}

Site parseClause(const std::string& clause) {
  const auto eq = clause.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == clause.size())
    badSpec(clause, "expected site=trigger");
  Site s;
  s.name = trim(clause.substr(0, eq));
  s.spec = trim(clause.substr(eq + 1));
  const auto colon = s.spec.find(':');
  if (colon == std::string::npos) badSpec(clause, "expected kind:arg");
  const std::string kind = s.spec.substr(0, colon);
  const std::string arg = s.spec.substr(colon + 1);
  if (kind == "every" || kind == "once") {
    s.trigger = kind == "every" ? Trigger::Every : Trigger::Once;
    std::int64_t n = 0;
    if (!parseInt(arg, n) || n < 1)
      badSpec(clause, "count must be an integer >= 1");
    s.n = static_cast<std::uint64_t>(n);
  } else if (kind == "rate") {
    s.trigger = Trigger::Rate;
    const auto at = arg.find('@');
    if (at == std::string::npos) badSpec(clause, "rate needs P@SEED");
    char* end = nullptr;
    const std::string p = arg.substr(0, at);
    s.rate = std::strtod(p.c_str(), &end);
    if (end == p.c_str() || *end != '\0' || s.rate < 0.0 || s.rate > 1.0)
      badSpec(clause, "P must be a number in [0, 1]");
    std::int64_t seed = 0;
    if (!parseInt(arg.substr(at + 1), seed) || seed < 0)
      badSpec(clause, "SEED must be a non-negative integer");
    s.seed = static_cast<std::uint64_t>(seed);
  } else {
    badSpec(clause, "unknown trigger kind '" + kind + "'");
  }
  return s;
}

std::vector<Site> parseSpec(const std::string& spec) {
  std::vector<Site> out;
  for (const auto part : split(spec, ';')) {
    const auto t = trim(part);
    if (t.empty()) continue;
    out.push_back(parseClause(std::string(t)));
  }
  return out;
}

/// mutex held. Loads LEVIOSO_FAULTS once, unless configure() ran first.
void ensureEnvLoaded(Registry& r) {
  if (r.envLoaded) return;
  r.envLoaded = true;
  const char* env = std::getenv("LEVIOSO_FAULTS");
  if (env == nullptr || *env == '\0') return;
  r.sites = parseSpec(env); // a malformed env spec must fail loudly
  g_enabled.store(!r.sites.empty(), std::memory_order_relaxed);
  if (!r.sites.empty())
    LEV_LOG_WARN("faults", "fault injection active",
                 {{"spec", std::string(env)}, {"sites", r.sites.size()}});
}

} // namespace

bool enabled() {
  if (g_enabled.load(std::memory_order_relaxed)) return true;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ensureEnvLoaded(r);
  return g_enabled.load(std::memory_order_relaxed);
}

bool shouldFail(const char* site) {
  if (!enabled()) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (Site& s : r.sites) {
    if (s.name != site) continue;
    const std::uint64_t arm = ++s.arms;
    bool fire = false;
    switch (s.trigger) {
    case Trigger::Every: fire = arm % s.n == 0; break;
    case Trigger::Once: fire = arm == s.n; break;
    case Trigger::Rate: fire = rateFires(s, arm); break;
    }
    if (fire) {
      ++s.fires;
      LEV_LOG_DEBUG("faults", "injected fault fired",
                    {{"site", s.name}, {"arm", arm}, {"fires", s.fires}});
    }
    return fire;
  }
  return false;
}

void configure(const std::string& spec) {
  std::vector<Site> sites = parseSpec(spec); // may throw; leave state alone
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.envLoaded = true; // explicit configuration wins over the environment
  r.sites = std::move(sites);
  g_enabled.store(!r.sites.empty(), std::memory_order_relaxed);
}

std::vector<SiteStats> stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ensureEnvLoaded(r);
  std::vector<SiteStats> out;
  out.reserve(r.sites.size());
  for (const Site& s : r.sites)
    out.push_back({s.name, s.spec, s.arms, s.fires});
  return out;
}

} // namespace lev::faultinject
