#include "support/cliparse.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"

namespace lev {

bool parseIntIn(const std::string& s, std::int64_t min, std::int64_t max,
                std::int64_t& out) {
  std::int64_t v = 0;
  if (!parseInt(s, v)) return false;
  if (v < min || v > max) return false;
  out = v;
  return true;
}

std::int64_t requireInt(const char* tool, const char* flag,
                        const std::string& value, std::int64_t min,
                        std::int64_t max) {
  std::int64_t v = 0;
  if (parseIntIn(value, min, max, v)) return v;
  std::int64_t parsed = 0;
  if (parseInt(value, parsed))
    std::fprintf(stderr,
                 "%s: invalid value for %s: '%s' (must be between %lld and "
                 "%lld)\n",
                 tool, flag, value.c_str(), static_cast<long long>(min),
                 static_cast<long long>(max));
  else
    std::fprintf(stderr, "%s: invalid value for %s: '%s' (not an integer)\n",
                 tool, flag, value.c_str());
  std::exit(2);
}

int requireIntArg(const char* tool, const char* flag, const std::string& value,
                  std::int64_t min, std::int64_t max) {
  return static_cast<int>(requireInt(tool, flag, value, min, max));
}

std::string requireChoice(const char* tool, const char* flag,
                          const std::string& value,
                          const std::vector<std::string>& choices) {
  for (const std::string& c : choices)
    if (c == value) return value;
  std::string list;
  for (const std::string& c : choices) {
    if (!list.empty()) list += ", ";
    list += c;
  }
  std::fprintf(stderr, "%s: invalid value for %s: '%s' (choices: %s)\n", tool,
               flag, value.c_str(), list.c_str());
  std::exit(2);
}

} // namespace lev
