#include "support/jsonparse.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/faultinject.hpp"

namespace lev::json {

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& why) {
    throw Error("json parse error at " + std::to_string(pos_) + ": " + why);
  }
  void skipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\t'))
      ++pos_;
  }
  char peek() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(std::string_view word) {
    skipWs();
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parseValue() {
    const char c = peek();
    JsonValue v;
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.str = parseString();
      return v;
    }
    if (consume("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume("false")) {
      v.kind = JsonValue::Kind::Bool;
      return v;
    }
    if (consume("null")) return v;
    return parseNumber();
  }

  JsonValue parseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      const std::string key = parseString();
      expect(':');
      v.members.emplace(key, parseValue());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parseValue());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  void appendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("bad escape");
      const char e = text_[pos_++];
      switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) fail("bad \\u");
        for (int i = 0; i < 4; ++i)
          if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)])))
            fail("bad \\u");
        const unsigned code = static_cast<unsigned>(std::strtoul(
            std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16));
        pos_ += 4;
        appendUtf8(out, code);
        break;
      }
      default: fail("unknown escape");
      }
    }
    expect('"');
    return out;
  }

  JsonValue parseNumber() {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    // JSON numbers start with '-' or a digit, never '+' or '.'.
    if (token[0] == '+' || token[0] == '.') fail("malformed number");
    // strtod parses the longest valid PREFIX, so "1.2.3" or "1e+2x" would
    // silently yield 1.2 / error-free garbage; the whole token must be
    // consumed or the value carries trailing garbage inside the number.
    char* end = nullptr;
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto it = members.find(key);
  if (it == members.end()) throw Error("json: no key '" + key + "'");
  return it->second;
}

JsonValue parse(std::string_view text) { return Parser(text).parse(); }

JsonValue parseFile(const std::string& path) {
  // Fault site for tools that ingest the project's own artifacts: a fired
  // fault behaves exactly like a transiently unreadable file.
  if (faultinject::shouldFail("json.parse"))
    throw TransientError("injected fault (LEVIOSO_FAULTS json.parse) reading " +
                         path);
  std::ifstream in(path);
  if (!in) throw Error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return parse(ss.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

} // namespace lev::json
