// Length-prefixed message framing for the serve wire protocol
// (docs/SERVE.md): every message on a connection is one frame, a 4-byte
// big-endian payload length followed by that many payload bytes (JSON
// text for levioso-serve, but the framing layer is payload-agnostic).
//
// Decoding is INCREMENTAL: a TCP read can deliver half a length prefix,
// one and a half frames, or ten frames at once, and the decoder must never
// hand a partial payload to the JSON parser (a truncated JSON document can
// parse "successfully" as a smaller value — the bogus-parse failure mode
// this layer exists to prevent). feed() buffers arbitrary byte chunks;
// next() yields exactly the complete frames, in order.
//
// A frame whose declared length exceeds maxFrameBytes is a protocol error
// (malicious or corrupt peer) and throws lev::Error immediately — before
// buffering the payload, so a bad 4-byte prefix cannot make the decoder
// allocate gigabytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lev::framing {

/// Frames larger than this are rejected by default (a grid submission of
/// thousands of points is ~1 MiB; nothing legitimate approaches 64 MiB).
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

/// Wrap `payload` in a frame: 4-byte big-endian length + payload bytes.
/// Throws lev::Error when payload exceeds maxFrameBytes.
std::string encodeFrame(std::string_view payload,
                        std::size_t maxFrameBytes = kDefaultMaxFrameBytes);

class FrameDecoder {
public:
  explicit FrameDecoder(std::size_t maxFrameBytes = kDefaultMaxFrameBytes)
      : maxFrameBytes_(maxFrameBytes) {}

  /// Buffer `n` more bytes off the wire. Throws lev::Error as soon as a
  /// complete length prefix declares an oversized frame.
  void feed(const char* data, std::size_t n);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// The next complete frame's payload, or nullopt until more bytes
  /// arrive. Call in a loop — one feed() can complete several frames.
  std::optional<std::string> next();

  /// Bytes buffered but not yet returned (partial prefix or payload).
  std::size_t pendingBytes() const { return buffer_.size() - consumed_; }

private:
  std::size_t maxFrameBytes_;
  std::string buffer_;
  std::size_t consumed_ = 0; ///< prefix of buffer_ already handed out
};

} // namespace lev::framing
