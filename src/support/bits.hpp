// Small bit-manipulation helpers used by the ISA encoder and the caches.
#pragma once

#include <cstdint>
#include <type_traits>

#include "support/error.hpp"

namespace lev {

/// True iff v is a power of two (0 is not).
constexpr bool isPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)); v must be non-zero.
constexpr int log2Floor(std::uint64_t v) {
  int r = 0;
  while (v >>= 1) ++r;
  return r;
}

/// log2 of a power of two.
inline int log2Exact(std::uint64_t v) {
  LEV_CHECK(isPow2(v), "log2Exact of non-power-of-two");
  return log2Floor(v);
}

/// Extract bits [lo, lo+width) of v.
constexpr std::uint64_t bitField(std::uint64_t v, int lo, int width) {
  return (v >> lo) & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
}

/// Insert the low `width` bits of field at position lo of v.
constexpr std::uint64_t setBitField(std::uint64_t v, int lo, int width,
                                    std::uint64_t field) {
  const std::uint64_t mask =
      ((width >= 64) ? ~0ull : ((1ull << width) - 1)) << lo;
  return (v & ~mask) | ((field << lo) & mask);
}

/// Sign-extend the low `bits` bits of v.
constexpr std::int64_t signExtend(std::uint64_t v, int bits) {
  const std::uint64_t m = 1ull << (bits - 1);
  v &= (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
  return static_cast<std::int64_t>((v ^ m) - m);
}

/// Round v up to the next multiple of `align` (a power of two).
constexpr std::uint64_t alignUp(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

} // namespace lev
