// Deterministic pseudo-random number generation.
//
// Workload generators and the attack harness must be reproducible across
// platforms, so we ship our own xoshiro256** implementation instead of
// relying on std::mt19937 seeding conventions.
#pragma once

#include <cstdint>

namespace lev {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// re-implemented here for deterministic cross-platform workloads.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be non-zero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

} // namespace lev
