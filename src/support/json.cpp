#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace lev {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

void JsonWriter::newline(int depth) {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (int i = 0; i < depth * indent_; ++i) os_ << ' ';
}

void JsonWriter::beforeValue() {
  if (afterKey_) {
    afterKey_ = false;
    return;
  }
  if (stack_.empty()) return; // top-level value
  if (stack_.back() == Scope::Object)
    throw Error("JsonWriter: value inside an object requires key() first");
  if (!firstInScope_) os_ << ',';
  newline(static_cast<int>(stack_.size()));
  firstInScope_ = false;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  os_ << '{';
  stack_.push_back(Scope::Object);
  firstInScope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (stack_.empty() || stack_.back() != Scope::Object)
    throw Error("JsonWriter: endObject() without matching beginObject()");
  if (afterKey_)
    throw Error("JsonWriter: endObject() after a key with no value");
  stack_.pop_back();
  if (!firstInScope_) newline(static_cast<int>(stack_.size()));
  os_ << '}';
  firstInScope_ = false;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  os_ << '[';
  stack_.push_back(Scope::Array);
  firstInScope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (stack_.empty() || stack_.back() != Scope::Array)
    throw Error("JsonWriter: endArray() without matching beginArray()");
  stack_.pop_back();
  if (!firstInScope_) newline(static_cast<int>(stack_.size()));
  os_ << ']';
  firstInScope_ = false;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Scope::Object)
    throw Error("JsonWriter: key() outside an object");
  if (afterKey_) throw Error("JsonWriter: key() immediately after key()");
  if (!firstInScope_) os_ << ',';
  newline(static_cast<int>(stack_.size()));
  firstInScope_ = false;
  os_ << '"' << escape(k) << '"' << ':';
  if (indent_ > 0) os_ << ' ';
  afterKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  beforeValue();
  os_ << '"' << escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  beforeValue();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  beforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os_ << buf;
  // "1e+06" and "1.5" are valid JSON; bare "1" is too.
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  os_ << "null";
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\b': out += "\\b"; break;
    case '\f': out += "\\f"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

} // namespace lev
