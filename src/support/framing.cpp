#include "support/framing.hpp"

#include "support/error.hpp"

namespace lev::framing {

namespace {
constexpr std::size_t kPrefixBytes = 4;
} // namespace

std::string encodeFrame(std::string_view payload, std::size_t maxFrameBytes) {
  if (payload.size() > maxFrameBytes)
    throw Error("frame payload of " + std::to_string(payload.size()) +
                " bytes exceeds the " + std::to_string(maxFrameBytes) +
                "-byte frame limit");
  std::string out;
  out.reserve(kPrefixBytes + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  out += static_cast<char>((len >> 24) & 0xff);
  out += static_cast<char>((len >> 16) & 0xff);
  out += static_cast<char>((len >> 8) & 0xff);
  out += static_cast<char>(len & 0xff);
  out.append(payload.data(), payload.size());
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  // Drop the already-consumed prefix before growing, so a long-lived
  // connection's buffer stays bounded by one partial frame.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
  // Validate the length prefix EAGERLY: a corrupt prefix must fail now,
  // not after the decoder has buffered maxFrameBytes of garbage.
  if (pendingBytes() >= kPrefixBytes) {
    const auto* p =
        reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
    const std::uint32_t len = (static_cast<std::uint32_t>(p[0]) << 24) |
                              (static_cast<std::uint32_t>(p[1]) << 16) |
                              (static_cast<std::uint32_t>(p[2]) << 8) |
                              static_cast<std::uint32_t>(p[3]);
    if (len > maxFrameBytes_)
      throw Error("frame length prefix declares " + std::to_string(len) +
                  " bytes, over the " + std::to_string(maxFrameBytes_) +
                  "-byte limit (corrupt or hostile peer)");
  }
}

std::optional<std::string> FrameDecoder::next() {
  if (pendingBytes() < kPrefixBytes) return std::nullopt;
  const auto* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint32_t len = (static_cast<std::uint32_t>(p[0]) << 24) |
                            (static_cast<std::uint32_t>(p[1]) << 16) |
                            (static_cast<std::uint32_t>(p[2]) << 8) |
                            static_cast<std::uint32_t>(p[3]);
  if (len > maxFrameBytes_)
    throw Error("frame length prefix declares " + std::to_string(len) +
                " bytes, over the " + std::to_string(maxFrameBytes_) +
                "-byte limit (corrupt or hostile peer)");
  if (pendingBytes() < kPrefixBytes + len) return std::nullopt;
  std::string payload = buffer_.substr(consumed_ + kPrefixBytes, len);
  consumed_ += kPrefixBytes + len;
  return payload;
}

} // namespace lev::framing
