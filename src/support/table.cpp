#include "support/table.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace lev {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LEV_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
  LEV_CHECK(cells.size() == header_.size(), "row width mismatch");
  rows_.push_back({std::move(cells), false});
}

void Table::addSeparator() { rows_.push_back({{}, true}); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      width[c] = std::max(width[c], row.cells[c].size());
  }

  auto emitLine = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emitSep = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "|-" : "-") << std::string(width[c], '-') << "-|";
    }
    os << '\n';
  };

  emitLine(header_);
  emitSep();
  for (const auto& row : rows_) {
    if (row.separator)
      emitSep();
    else
      emitLine(row.cells);
  }
}

void Table::printCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_)
    if (!row.separator) emit(row.cells);
}

double geomean(const std::vector<double>& values) {
  LEV_CHECK(!values.empty(), "geomean of empty series");
  double acc = 0.0;
  for (double v : values) {
    LEV_CHECK(v > 0.0, "geomean needs positive values");
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace lev
