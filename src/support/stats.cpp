#include "support/stats.hpp"

namespace lev {

std::int64_t& StatSet::counter(const std::string& name) {
  return counters_[name];
}

std::int64_t StatSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void StatSet::clear() {
  for (auto& [name, value] : counters_) value = 0;
}

void StatSet::print(std::ostream& os, const std::string& prefix) const {
  for (const auto& [name, value] : counters_)
    os << prefix << name << " = " << value << '\n';
}

} // namespace lev
