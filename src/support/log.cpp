#include "support/log.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>

#include "support/json.hpp"

namespace lev::log {

namespace {

/// Serializes every sink write; one message is one atomic line per sink.
std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

struct Sinks {
  std::ostream* text = &std::cerr;
  std::ostream* json = nullptr;
  std::ofstream jsonFile; ///< owns the LEVIOSO_LOG file when used
};

Sinks& sinks() {
  static Sinks s;
  return s;
}

std::atomic<int>& thresholdVar() {
  static std::atomic<int> lv{static_cast<int>(Level::Info)};
  return lv;
}

/// One-time environment configuration: LEVIOSO_LOG (JSON-lines file path,
/// appended so one script's benches share a log) and LEVIOSO_LOG_LEVEL.
void initFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* lv = std::getenv("LEVIOSO_LOG_LEVEL"))
      thresholdVar().store(
          static_cast<int>(parseLevel(lv, Level::Info)),
          std::memory_order_relaxed);
    const char* path = std::getenv("LEVIOSO_LOG");
    if (path == nullptr || *path == '\0') return;
    std::lock_guard<std::mutex> lock(sinkMutex());
    sinks().jsonFile.open(path, std::ios::app);
    if (sinks().jsonFile)
      sinks().json = &sinks().jsonFile;
    else
      std::cerr << "levioso: cannot open LEVIOSO_LOG file " << path << "\n";
  });
}

/// Microseconds since the Unix epoch (host wall clock; log metadata only).
std::int64_t nowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void writeHuman(std::ostream& os, Level lv, std::string_view component,
                std::string_view msg, std::initializer_list<Field> fields,
                std::int64_t tsMicros) {
  const std::time_t secs = static_cast<std::time_t>(tsMicros / 1'000'000);
  std::tm tm{};
#ifdef _WIN32
  localtime_s(&tm, &secs);
#else
  localtime_r(&secs, &tm);
#endif
  char stamp[16];
  std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%03d", tm.tm_hour,
                tm.tm_min, tm.tm_sec,
                static_cast<int>((tsMicros / 1000) % 1000));
  static const char kLetter[] = {'D', 'I', 'W', 'E'};
  os << '[' << stamp << "] " << kLetter[static_cast<int>(lv)] << ' '
     << component << ": " << msg;
  bool first = true;
  for (const Field& f : fields) {
    os << (first ? " (" : ", ") << f.key << '=' << f.value;
    first = false;
  }
  if (!first) os << ')';
  os << '\n' << std::flush;
}

void writeJsonLine(std::ostream& os, Level lv, std::string_view component,
                   std::string_view msg, std::initializer_list<Field> fields,
                   std::int64_t tsMicros) {
  // Hand-assembled (not JsonWriter) to keep one message on ONE line, but
  // every string goes through JsonWriter::escape so the output always
  // survives a strict parser.
  os << "{\"ts\":" << tsMicros << ",\"level\":\"" << levelName(lv)
     << "\",\"component\":\"" << JsonWriter::escape(component)
     << "\",\"msg\":\"" << JsonWriter::escape(msg) << '"';
  if (fields.size() != 0) {
    os << ",\"fields\":{";
    bool first = true;
    for (const Field& f : fields) {
      if (!first) os << ',';
      first = false;
      os << '"' << JsonWriter::escape(f.key) << "\":";
      if (f.kind == Field::Kind::Str)
        os << '"' << JsonWriter::escape(f.value) << '"';
      else
        os << f.value;
    }
    os << '}';
  }
  os << "}\n" << std::flush;
}

} // namespace

Field::Field(std::string_view k, double v) : key(k), kind(Kind::Num) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan literal; degrade to a string field.
    kind = Kind::Str;
    value = v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

const char* levelName(Level lv) {
  switch (lv) {
  case Level::Debug: return "debug";
  case Level::Info: return "info";
  case Level::Warn: return "warn";
  case Level::Error: return "error";
  case Level::Off: return "off";
  }
  return "?";
}

Level parseLevel(std::string_view s, Level fallback) {
  std::string lower;
  lower.reserve(s.size());
  for (const char c : s)
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  if (lower == "debug") return Level::Debug;
  if (lower == "info") return Level::Info;
  if (lower == "warn" || lower == "warning") return Level::Warn;
  if (lower == "error") return Level::Error;
  if (lower == "off" || lower == "none" || lower == "quiet")
    return Level::Off;
  return fallback;
}

Level threshold() {
  initFromEnv();
  return static_cast<Level>(thresholdVar().load(std::memory_order_relaxed));
}

void setThreshold(Level lv) {
  initFromEnv(); // so a later env init cannot overwrite an explicit choice
  thresholdVar().store(static_cast<int>(lv), std::memory_order_relaxed);
}

bool enabled(Level lv) { return lv >= threshold() && lv != Level::Off; }

void message(Level lv, std::string_view component, std::string_view msg,
             std::initializer_list<Field> fields) {
  if (!enabled(lv)) return;
  const std::int64_t ts = nowMicros();
  std::lock_guard<std::mutex> lock(sinkMutex());
  Sinks& s = sinks();
  if (s.text != nullptr) writeHuman(*s.text, lv, component, msg, fields, ts);
  if (s.json != nullptr) writeJsonLine(*s.json, lv, component, msg, fields, ts);
}

void setTextSink(std::ostream* os) {
  initFromEnv();
  std::lock_guard<std::mutex> lock(sinkMutex());
  sinks().text = os;
}

void setJsonSink(std::ostream* os) {
  initFromEnv();
  std::lock_guard<std::mutex> lock(sinkMutex());
  sinks().json = os;
}

} // namespace lev::log
