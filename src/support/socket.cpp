#include "support/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/strings.hpp"

namespace lev::sock {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

} // namespace

void parseEndpoint(const std::string& endpoint, std::string& host,
                   std::uint16_t& port) {
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size())
    throw Error("malformed endpoint '" + endpoint + "' (expected host:port)");
  std::int64_t p = 0;
  if (!parseInt(endpoint.substr(colon + 1), p) || p < 1 || p > 65535)
    throw Error("malformed port in endpoint '" + endpoint + "'");
  host = endpoint.substr(0, colon);
  port = static_cast<std::uint16_t>(p);
}

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::open(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throwErrno("socket()");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throwErrno("bind(port " + std::to_string(port) + ")");
  if (::listen(fd.get(), backlog) != 0) throwErrno("listen()");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throwErrno("getsockname()");
  Listener l;
  l.fd_ = std::move(fd);
  l.port_ = ntohs(addr.sin_port);
  return l;
}

int Listener::acceptFd() {
  for (;;) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    throwErrno("accept()");
  }
}

Fd connectTo(const std::string& host, std::uint16_t port,
             std::int64_t timeoutMicros) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0 || res == nullptr)
    throw Error("cannot resolve host '" + host +
                "': " + ::gai_strerror(rc));
  Fd fd(::socket(res->ai_family, res->ai_socktype, res->ai_protocol));
  if (!fd.valid()) {
    ::freeaddrinfo(res);
    throwErrno("socket()");
  }
  if (timeoutMicros > 0) {
    // Set BEFORE connect(): Linux honors SO_SNDTIMEO for the three-way
    // handshake too, so an unreachable daemon times out like a stalled one.
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeoutMicros / 1'000'000);
    tv.tv_usec = static_cast<suseconds_t>(timeoutMicros % 1'000'000);
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  const int ok = ::connect(fd.get(), res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (ok != 0)
    throwErrno("connect(" + host + ":" + std::to_string(port) + ")");
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::size_t readSome(int fd, char* buf, std::size_t n) {
  if (faultinject::shouldFail("net.read"))
    throw TransientError("injected fault (LEVIOSO_FAULTS net.read) on fd " +
                         std::to_string(fd));
  for (;;) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got >= 0) return static_cast<std::size_t>(got);
    if (errno == EINTR) continue;
    // SO_RCVTIMEO expiry (connectTo's timeoutMicros) on a blocking fd.
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      throw TransientError("socket read timed out on fd " +
                           std::to_string(fd));
    throw TransientError("socket read failed on fd " + std::to_string(fd) +
                         ": " + std::strerror(errno));
  }
}

void writeAll(int fd, const char* data, std::size_t n) {
  if (faultinject::shouldFail("net.write"))
    throw TransientError("injected fault (LEVIOSO_FAULTS net.write) on fd " +
                         std::to_string(fd));
  std::size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that died mid-write must surface as EPIPE, not
    // a process-killing SIGPIPE (worker loss is a recoverable event).
    const ssize_t put = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (put > 0) {
      off += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    throw TransientError("socket write failed on fd " + std::to_string(fd) +
                         ": " + std::strerror(errno));
  }
}

std::size_t writeSome(int fd, const char* data, std::size_t n) {
  if (faultinject::shouldFail("net.write"))
    throw TransientError("injected fault (LEVIOSO_FAULTS net.write) on fd " +
                         std::to_string(fd));
  for (;;) {
    const ssize_t put = ::send(fd, data, n, MSG_NOSIGNAL);
    if (put >= 0) return static_cast<std::size_t>(put);
    if (errno == EINTR) continue;
    throw TransientError("socket write failed on fd " + std::to_string(fd) +
                         ": " + std::strerror(errno));
  }
}

std::size_t writeSomeNonblocking(int fd, const char* data, std::size_t n) {
  if (faultinject::shouldFail("net.write"))
    throw TransientError("injected fault (LEVIOSO_FAULTS net.write) on fd " +
                         std::to_string(fd));
  for (;;) {
    const ssize_t put = ::send(fd, data, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (put >= 0) return static_cast<std::size_t>(put);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    throw TransientError("socket write failed on fd " + std::to_string(fd) +
                         ": " + std::strerror(errno));
  }
}

} // namespace lev::sock
