// Deterministic fault injection for the host-side machinery (cache I/O,
// compilation, JSON ingestion). Production code asks `shouldFail(site)` at
// each failure point it wants testable; with no configuration the call is
// one relaxed atomic load, so leaving sites compiled in costs nothing.
//
// Configuration comes from the LEVIOSO_FAULTS environment variable (or an
// explicit configure() call in tests):
//
//   LEVIOSO_FAULTS="cache.store=every:3;compile=once:5;cache.read=rate:0.1@7"
//
// with one `site=trigger` clause per site:
//
//   every:N      fire on every Nth arming of the site (N >= 1)
//   once:N       fire exactly once, on the Nth arming
//   rate:P@SEED  fire on ~fraction P of armings, decided by a hash of
//                (site, arming index, SEED) — deterministic, not random
//
// "Arming" means one shouldFail() call for that site. All triggers are
// pure functions of the per-site arming counter, so a given spec produces
// the same fire pattern on every run (the property tests/fault_test.cpp
// pins). Per-site arm/fire counters are exported into the run manifest so
// an injected run is self-describing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lev::faultinject {

/// One configured site's canonical trigger plus lifetime counters.
struct SiteStats {
  std::string site;
  std::string trigger;     ///< canonical spec, e.g. "every:3"
  std::uint64_t arms = 0;  ///< shouldFail() calls for this site
  std::uint64_t fires = 0; ///< how many of them fired
};

/// True when any site is configured. One relaxed atomic load — the fast
/// path every instrumented site takes in normal (uninjected) runs.
bool enabled();

/// Arm the named site and report whether its fault fires now. Sites not
/// named in the configuration never fire (and are not counted).
/// Thread-safe; the first call reads LEVIOSO_FAULTS if configure() has not
/// been called.
bool shouldFail(const char* site);

/// (Re)configure from a spec string; "" disables injection and clears all
/// counters. Throws lev::Error on a malformed spec. Overrides any earlier
/// environment configuration.
void configure(const std::string& spec);

/// Counters for every configured site, in spec order.
std::vector<SiteStats> stats();

} // namespace lev::faultinject
