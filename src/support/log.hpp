// Structured logging for the HOST side of the experiment stack (runner,
// tools, benches). Never called from the simulated pipeline: host logging
// must not perturb simulation results, so the simulator keeps reporting
// through StatSet/TraceBuffer and this logger only narrates what the
// machinery AROUND the simulator did.
//
// Every message carries a severity, a component tag ("pool", "cache",
// "sweep", a tool name, ...) and optional typed key=value fields. Two
// sinks, each independently switchable:
//
//   * a human-readable line on stderr       ([12:34:56.789] W cache: ...)
//   * a JSON-lines file when LEVIOSO_LOG=path (one object per line,
//     escaped through JsonWriter so any message round-trips a strict
//     parser)
//
// The runtime threshold defaults to Info and can be changed with
// LEVIOSO_LOG_LEVEL=debug|info|warn|error|off or programmatically
// (tools map -v / --quiet onto it). The LEV_LOG_* macros evaluate their
// arguments only when the level is enabled, and LEV_LOG_DEBUG compiles
// out entirely under -DLEVIOSO_NO_DEBUG_LOG. Thread-safe throughout: one
// message is one atomic write per sink.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>

namespace lev::log {

enum class Level : int { Debug = 0, Info, Warn, Error, Off };

/// Lower-case level name ("debug", ... , "off").
const char* levelName(Level lv);

/// Parse a LEVIOSO_LOG_LEVEL-style spelling (case-insensitive); returns
/// `fallback` on anything unrecognized.
Level parseLevel(std::string_view s, Level fallback);

/// Current runtime threshold; messages below it are dropped.
Level threshold();
void setThreshold(Level lv);

/// Cheap per-message gate (atomic load); the macros call this before
/// evaluating any message argument.
bool enabled(Level lv);

/// One typed key=value attachment. The value is rendered at construction;
/// the kind survives so the JSON sink can emit numbers/bools unquoted.
struct Field {
  enum class Kind { Str, Num, Bool };

  Field(std::string_view k, std::string_view v)
      : key(k), value(v), kind(Kind::Str) {}
  Field(std::string_view k, const char* v)
      : key(k), value(v), kind(Kind::Str) {}
  Field(std::string_view k, const std::string& v)
      : key(k), value(v), kind(Kind::Str) {}
  Field(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false"), kind(Kind::Bool) {}
  Field(std::string_view k, double v);
  Field(std::string_view k, long long v)
      : key(k), value(std::to_string(v)), kind(Kind::Num) {}
  Field(std::string_view k, unsigned long long v)
      : key(k), value(std::to_string(v)), kind(Kind::Num) {}
  Field(std::string_view k, int v) : Field(k, static_cast<long long>(v)) {}
  Field(std::string_view k, long v) : Field(k, static_cast<long long>(v)) {}
  Field(std::string_view k, unsigned v)
      : Field(k, static_cast<unsigned long long>(v)) {}
  Field(std::string_view k, unsigned long v)
      : Field(k, static_cast<unsigned long long>(v)) {}

  std::string key;
  std::string value;
  Kind kind;
};

/// Emit one message (already past the threshold check in the macros; safe
/// to call directly — it re-checks). Thread-safe.
void message(Level lv, std::string_view component, std::string_view msg,
             std::initializer_list<Field> fields = {});

/// Redirect the human-readable sink (default: stderr). nullptr silences
/// it. Tests point this at a std::ostringstream.
void setTextSink(std::ostream* os);

/// Redirect the JSON-lines sink (default: the LEVIOSO_LOG file, if set).
/// nullptr disables it. Tests point this at a std::ostringstream.
void setJsonSink(std::ostream* os);

} // namespace lev::log

// The macros are the intended call sites: they gate on enabled() so field
// rendering costs nothing when the level is off.
#define LEV_LOG_AT(lv, component, ...)                                         \
  do {                                                                         \
    if (::lev::log::enabled(lv))                                               \
      ::lev::log::message(lv, component, __VA_ARGS__);                         \
  } while (false)

#define LEV_LOG_ERROR(component, ...)                                          \
  LEV_LOG_AT(::lev::log::Level::Error, component, __VA_ARGS__)
#define LEV_LOG_WARN(component, ...)                                           \
  LEV_LOG_AT(::lev::log::Level::Warn, component, __VA_ARGS__)
#define LEV_LOG_INFO(component, ...)                                           \
  LEV_LOG_AT(::lev::log::Level::Info, component, __VA_ARGS__)

// Debug is additionally compile-out-able: -DLEVIOSO_NO_DEBUG_LOG turns
// every LEV_LOG_DEBUG into a no-op that never evaluates its arguments.
#ifdef LEVIOSO_NO_DEBUG_LOG
#define LEV_LOG_DEBUG(component, ...) ((void)0)
#else
#define LEV_LOG_DEBUG(component, ...)                                          \
  LEV_LOG_AT(::lev::log::Level::Debug, component, __VA_ARGS__)
#endif
