// Minimal string utilities for the textual IR/assembly parsers and reports.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lev {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on arbitrary whitespace runs; empty fields are dropped.
std::vector<std::string_view> splitWs(std::string_view s);

/// True if s starts with the given prefix.
bool startsWith(std::string_view s, std::string_view prefix);

/// Parse a signed 64-bit integer (decimal, or hex with 0x prefix, optional
/// leading '-'). Returns false on malformed input.
bool parseInt(std::string_view s, std::int64_t& out);

/// Format a double with fixed precision (printf "%.*f").
std::string fmtF(double v, int prec);

/// Format a percentage ("12.3%").
std::string fmtPct(double fraction, int prec = 1);

} // namespace lev
