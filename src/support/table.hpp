// Console table / CSV emitter used by the benchmark harness to print
// paper-style tables and figure series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace lev {

/// Accumulates rows of string cells and renders them either as an aligned
/// console table or as CSV. Benches use one Table per paper table/figure.
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; its width must match the header.
  void addRow(std::vector<std::string> cells);

  /// Append a horizontal separator (console rendering only).
  void addSeparator();

  /// Render as an aligned console table.
  void print(std::ostream& os) const;

  /// Render as CSV (separators skipped).
  void printCsv(std::ostream& os) const;

  std::size_t rowCount() const { return rows_.size(); }

private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Geometric mean of a series of ratios; values must be positive.
double geomean(const std::vector<double>& values);

} // namespace lev
