// A small streaming JSON emitter for machine-readable output (runner
// reports, docs/RUNNER.md; Chrome trace exports, docs/TRACING.md).
// Handles quoting/escaping, comma placement and indentation; the caller
// supplies structure with begin/end calls. No DOM, no allocation per
// value. Structural misuse (key() outside an object, key after key,
// end*() without a matching begin) throws lev::Error — a malformed
// report must never be written silently.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lev {

class JsonWriter {
public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Object member key; must be followed by exactly one value or begin*().
  /// Throws lev::Error when called outside an object or twice in a row.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  /// Non-finite doubles are emitted as null (JSON has no inf/nan).
  JsonWriter& value(double v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <class T> JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// JSON string-escape `s` (quotes not included).
  static std::string escape(std::string_view s);

private:
  enum class Scope { Object, Array };
  void beforeValue(); ///< comma/newline/indent bookkeeping
  void newline(int depth);

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  bool firstInScope_ = true;
  bool afterKey_ = false;
};

namespace runner {
using lev::JsonWriter; ///< historical home of the runner report writer
} // namespace runner

} // namespace lev
