// A minimal strict JSON parser, promoted from the test suite now that
// production tools consume the project's own JSON artifacts (levioso-report
// diffs runner reports, manifests and speed baselines).
//
// Strictness is deliberate: anything the writers emit must parse here with
// no leniency, so writer bugs (bad escapes, NaN literals, trailing commas)
// fail loudly instead of flowing into downstream tools. Parse errors throw
// lev::Error with a byte offset.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lev::json {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  /// Object member access; throws lev::Error when the key is absent.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const { return members.count(key) != 0; }
};

/// Parse one complete JSON document (trailing garbage is an error).
JsonValue parse(std::string_view text);

/// Parse the contents of a file; throws lev::Error (with the path in the
/// message) when the file cannot be read or does not parse.
JsonValue parseFile(const std::string& path);

} // namespace lev::json
