// Strict integer parsing for tool command lines.
//
// The tools originally ran flag values through std::atoi, which returns 0
// on garbage — so `--budget=oops` silently meant budget 0 and quietly
// changed what an experiment measured. These helpers either produce a
// validated value or exit with a diagnostic on stderr; nothing in between.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lev {

/// Strict parse + range check (inclusive bounds). Returns false on
/// malformed input or out-of-range values; `out` is untouched on failure.
bool parseIntIn(const std::string& s, std::int64_t min, std::int64_t max,
                std::int64_t& out);

/// Parse the value of `flag` or die: prints
/// "<tool>: invalid value for <flag>: '<value>' ..." to stderr and exits
/// with status 2 (the usage-error convention) on malformed or out-of-range
/// input.
std::int64_t requireInt(const char* tool, const char* flag,
                        const std::string& value, std::int64_t min,
                        std::int64_t max);

/// requireInt() narrowed to int, for the many int-typed tool knobs.
int requireIntArg(const char* tool, const char* flag, const std::string& value,
                  std::int64_t min, std::int64_t max);

/// Validate `value` against a closed set of choices or die: prints
/// "<tool>: invalid value for <flag>: '<value>' (choices: ...)" to stderr
/// and exits with status 2 on anything not in the set. Returns `value`
/// unchanged so call sites can initialize from it.
std::string requireChoice(const char* tool, const char* flag,
                          const std::string& value,
                          const std::vector<std::string>& choices);

} // namespace lev
