// Error-handling primitives shared by every module.
//
// The library reports programmer errors (broken invariants, malformed input
// reaching an internal stage) via exceptions so that tests can assert on them
// and tools can fail cleanly with a message instead of UB.
#pragma once

#include <stdexcept>
#include <string>

namespace lev {

/// Base class for all errors raised by this library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when textual input (IR or assembly) fails to parse.
class ParseError : public Error {
public:
  ParseError(int line, const std::string& what)
      : Error("line " + std::to_string(line) + ": " + what), line_(line) {}
  int line() const { return line_; }

private:
  int line_;
};

/// Raised when an IR module fails verification.
class VerifyError : public Error {
public:
  using Error::Error;
};

/// Raised when a simulated program performs an illegal operation
/// (misaligned access, bad opcode, access to unmapped memory, ...).
class SimError : public Error {
public:
  using Error::Error;
};

/// A host-side failure that is expected to succeed when simply tried again
/// (an I/O hiccup, an injected fault from src/support/faultinject.hpp).
/// The runner retries these with bounded exponential backoff; deterministic
/// failures (SimError and friends) are never retried — rerunning a
/// deterministic simulation can only reproduce the same outcome.
class TransientError : public Error {
public:
  using Error::Error;
};

/// A job exceeded its wall-clock budget (JobSpec::deadlineMicros). Distinct
/// from SimError so the runner can classify it separately; like SimError it
/// is never retried (the job already consumed its time allowance).
class DeadlineError : public Error {
public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  throw Error(std::string("check failed: ") + cond + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
} // namespace detail

} // namespace lev

/// Internal invariant check; throws lev::Error on failure. Always enabled —
/// the simulator is a research tool where silent corruption is worse than the
/// branch cost.
#define LEV_CHECK(cond, msg)                                                   \
  do {                                                                         \
    if (!(cond)) ::lev::detail::checkFailed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define LEV_UNREACHABLE(msg)                                                   \
  ::lev::detail::checkFailed("unreachable", __FILE__, __LINE__, (msg))
