// A tiny named-counter registry, in the spirit of gem5's Stats framework.
//
// Pipeline stages and policies register counters by name; the simulator
// dumps them all at the end of a run. Counters are plain int64 values owned
// by the registry so that call sites stay allocation-free on the hot path.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace lev {

/// Registry of named 64-bit counters with stable iteration order.
class StatSet {
public:
  /// Returns a reference to the counter, creating it at zero on first use.
  /// References stay valid for the lifetime of the StatSet.
  std::int64_t& counter(const std::string& name);

  /// Read a counter; returns 0 if it was never touched.
  std::int64_t get(const std::string& name) const;

  /// Reset all counters to zero (the set of names is kept).
  void clear();

  /// Dump "name = value" lines sorted by name.
  void print(std::ostream& os, const std::string& prefix = "") const;

  const std::map<std::string, std::int64_t>& all() const { return counters_; }

private:
  std::map<std::string, std::int64_t> counters_;
};

} // namespace lev
