// Dominator / post-dominator trees via the Cooper-Harvey-Kennedy algorithm.
//
// The same implementation serves both directions: forward dominance uses the
// CFG as-is; post-dominance runs on the reversed CFG rooted at the virtual
// exit. Post-dominance is the core of the Levioso reconvergence analysis —
// the immediate post-dominator of a branch's block is its reconvergence
// point, and the blocks control-dependent on the branch are exactly those on
// paths from the branch to (but excluding) that point.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"

namespace lev::analysis {

/// A dominance tree over CFG nodes (including the virtual exit node when
/// built in the post-dominance direction).
class DomTree {
public:
  /// Forward dominance over real blocks, rooted at the entry block.
  static DomTree dominators(const Cfg& cfg);
  /// Post-dominance, rooted at the virtual exit.
  static DomTree postDominators(const Cfg& cfg);

  /// Immediate dominator of node, or -1 for the root and for nodes
  /// unreachable in this direction.
  int idom(int node) const { return idom_[static_cast<std::size_t>(node)]; }

  /// True iff a (post-)dominates b; reflexive. Unreachable nodes dominate
  /// nothing and are dominated by nothing.
  bool dominates(int a, int b) const;

  /// True if the node is reachable in this direction.
  bool reachable(int node) const {
    return root_ == node || idom_[static_cast<std::size_t>(node)] >= 0;
  }

  int root() const { return root_; }
  int numNodes() const { return static_cast<int>(idom_.size()); }

  /// Children lists of the dominator tree.
  const std::vector<std::vector<int>>& children() const { return children_; }

private:
  DomTree(int numNodes, int root, const std::vector<int>& order,
          const std::vector<std::vector<int>>& preds);

  void computeDfsNumbers();

  int root_ = 0;
  std::vector<int> idom_;
  std::vector<std::vector<int>> children_;
  // Pre/post numbering of the dominator tree for O(1) dominance queries.
  std::vector<int> dfsIn_, dfsOut_;
};

} // namespace lev::analysis
