#include "analysis/reachingdefs.hpp"

#include <algorithm>

namespace lev::analysis {

ReachingDefs::ReachingDefs(const Cfg& cfg) : fn_(cfg.function()) {
  const int numBlocks = cfg.numBlocks();
  instById_.assign(static_cast<std::size_t>(fn_.numInsts()), nullptr);
  instDefIdx_.assign(static_cast<std::size_t>(fn_.numInsts()), -1);

  // Enumerate definitions: params first, then defining instructions.
  defsOfReg_.assign(static_cast<std::size_t>(fn_.numRegs()), {});
  for (int p = 0; p < fn_.numParams(); ++p) {
    defInst_.push_back(-1);
    defReg_.push_back(p);
    defsOfReg_[static_cast<std::size_t>(p)].push_back(p);
  }
  for (int b = 0; b < numBlocks; ++b)
    for (const ir::Inst& inst : fn_.block(b).insts) {
      instById_[static_cast<std::size_t>(inst.id)] = &inst;
      if (inst.dst >= 0) {
        const int idx = static_cast<int>(defInst_.size());
        defInst_.push_back(inst.id);
        defReg_.push_back(inst.dst);
        defsOfReg_[static_cast<std::size_t>(inst.dst)].push_back(idx);
        instDefIdx_[static_cast<std::size_t>(inst.id)] = idx;
      }
    }

  const std::size_t nd = defInst_.size();

  // Per-block gen/kill.
  std::vector<BitSet> gen(static_cast<std::size_t>(numBlocks), BitSet(nd));
  std::vector<BitSet> kill(static_cast<std::size_t>(numBlocks), BitSet(nd));
  for (int b = 0; b < numBlocks; ++b) {
    for (const ir::Inst& inst : fn_.block(b).insts) {
      if (inst.dst < 0) continue;
      const int myIdx = instDefIdx_[static_cast<std::size_t>(inst.id)];
      for (int other : defsOfReg_[static_cast<std::size_t>(inst.dst)]) {
        gen[static_cast<std::size_t>(b)].reset(static_cast<std::size_t>(other));
        kill[static_cast<std::size_t>(b)].set(static_cast<std::size_t>(other));
      }
      gen[static_cast<std::size_t>(b)].set(static_cast<std::size_t>(myIdx));
    }
  }

  // Forward fixpoint: in[b] = union over preds of out[p];
  // out[b] = gen[b] | (in[b] - kill[b]).
  blockIn_.assign(static_cast<std::size_t>(numBlocks), BitSet(nd));
  std::vector<BitSet> out(static_cast<std::size_t>(numBlocks), BitSet(nd));
  // Parameter defs reach the entry block.
  for (int p = 0; p < fn_.numParams(); ++p)
    blockIn_[0].set(static_cast<std::size_t>(p));

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : cfg.rpo()) {
      BitSet in = blockIn_[static_cast<std::size_t>(b)];
      for (int p : cfg.preds(b))
        in.unionWith(out[static_cast<std::size_t>(p)]);
      if (!(in == blockIn_[static_cast<std::size_t>(b)])) {
        blockIn_[static_cast<std::size_t>(b)] = in;
        changed = true;
      }
      BitSet o = in;
      o.subtract(kill[static_cast<std::size_t>(b)]);
      o.unionWith(gen[static_cast<std::size_t>(b)]);
      if (!(o == out[static_cast<std::size_t>(b)])) {
        out[static_cast<std::size_t>(b)] = o;
        changed = true;
      }
    }
  }
}

std::vector<int> ReachingDefs::reachingDefsOf(int instId, int reg) const {
  const ir::Inst* target = instById_[static_cast<std::size_t>(instId)];
  LEV_CHECK(target != nullptr, "unknown instruction id");
  const int b = target->block;

  // Walk the block from the top, tracking the last local def of `reg`.
  int lastLocalDef = -1;
  for (const ir::Inst& inst : fn_.block(b).insts) {
    if (inst.id == instId) break;
    if (inst.dst == reg)
      lastLocalDef = instDefIdx_[static_cast<std::size_t>(inst.id)];
  }
  if (lastLocalDef >= 0) return {lastLocalDef};

  // Otherwise the defs reaching the block entry.
  std::vector<int> result;
  for (int d : defsOfReg_[static_cast<std::size_t>(reg)])
    if (blockIn_[static_cast<std::size_t>(b)].test(static_cast<std::size_t>(d)))
      result.push_back(d);
  return result;
}

std::vector<int> ReachingDefs::reachingDefsForUses(int instId) const {
  const ir::Inst* inst = instById_[static_cast<std::size_t>(instId)];
  LEV_CHECK(inst != nullptr, "unknown instruction id");
  std::vector<int> regs;
  inst->uses(regs);
  std::sort(regs.begin(), regs.end());
  regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
  std::vector<int> result;
  for (int r : regs) {
    auto defs = reachingDefsOf(instId, r);
    result.insert(result.end(), defs.begin(), defs.end());
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

} // namespace lev::analysis
