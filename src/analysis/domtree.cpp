#include "analysis/domtree.hpp"

#include "support/error.hpp"

namespace lev::analysis {

DomTree DomTree::dominators(const Cfg& cfg) {
  // Restrict to real blocks: copy predecessor lists minus the virtual exit.
  std::vector<std::vector<int>> preds(
      static_cast<std::size_t>(cfg.numNodes()));
  for (int b = 0; b < cfg.numBlocks(); ++b)
    preds[static_cast<std::size_t>(b)] = cfg.preds(b);
  return DomTree(cfg.numNodes(), 0, cfg.rpo(), preds);
}

DomTree DomTree::postDominators(const Cfg& cfg) {
  // Reversed graph: predecessors are the CFG successors.
  std::vector<std::vector<int>> preds(
      static_cast<std::size_t>(cfg.numNodes()));
  for (int n = 0; n < cfg.numNodes(); ++n)
    preds[static_cast<std::size_t>(n)] = cfg.succs(n);
  return DomTree(cfg.numNodes(), cfg.virtualExit(), cfg.reverseRpo(), preds);
}

DomTree::DomTree(int numNodes, int root, const std::vector<int>& order,
                 const std::vector<std::vector<int>>& preds)
    : root_(root), idom_(static_cast<std::size_t>(numNodes), -1) {
  // Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm".
  std::vector<int> orderIndex(static_cast<std::size_t>(numNodes), -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    orderIndex[static_cast<std::size_t>(order[i])] = static_cast<int>(i);

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (orderIndex[static_cast<std::size_t>(a)] >
             orderIndex[static_cast<std::size_t>(b)])
        a = idom_[static_cast<std::size_t>(a)];
      while (orderIndex[static_cast<std::size_t>(b)] >
             orderIndex[static_cast<std::size_t>(a)])
        b = idom_[static_cast<std::size_t>(b)];
    }
    return a;
  };

  idom_[static_cast<std::size_t>(root)] = root;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : order) {
      if (node == root) continue;
      int newIdom = -1;
      for (int p : preds[static_cast<std::size_t>(node)]) {
        if (idom_[static_cast<std::size_t>(p)] < 0) continue; // unprocessed
        newIdom = (newIdom < 0) ? p : intersect(p, newIdom);
      }
      if (newIdom >= 0 && idom_[static_cast<std::size_t>(node)] != newIdom) {
        idom_[static_cast<std::size_t>(node)] = newIdom;
        changed = true;
      }
    }
  }
  // Root's self-idom is a fixpoint artifact; expose it as -1.
  idom_[static_cast<std::size_t>(root)] = -1;

  children_.assign(static_cast<std::size_t>(numNodes), {});
  for (int n = 0; n < numNodes; ++n)
    if (n != root && idom_[static_cast<std::size_t>(n)] >= 0)
      children_[static_cast<std::size_t>(idom_[static_cast<std::size_t>(n)])]
          .push_back(n);

  computeDfsNumbers();
}

void DomTree::computeDfsNumbers() {
  const std::size_t n = idom_.size();
  dfsIn_.assign(n, -1);
  dfsOut_.assign(n, -1);
  int clock = 0;
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(root_, 0);
  dfsIn_[static_cast<std::size_t>(root_)] = clock++;
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    const auto& kids = children_[static_cast<std::size_t>(node)];
    if (idx < kids.size()) {
      const int child = kids[idx++];
      dfsIn_[static_cast<std::size_t>(child)] = clock++;
      stack.emplace_back(child, 0);
    } else {
      dfsOut_[static_cast<std::size_t>(node)] = clock++;
      stack.pop_back();
    }
  }
}

bool DomTree::dominates(int a, int b) const {
  const auto ai = static_cast<std::size_t>(a);
  const auto bi = static_cast<std::size_t>(b);
  LEV_CHECK(a >= 0 && ai < idom_.size() && b >= 0 && bi < idom_.size(),
            "dominates() node out of range");
  if (dfsIn_[ai] < 0 || dfsIn_[bi] < 0) return false; // unreachable
  return dfsIn_[ai] <= dfsIn_[bi] && dfsOut_[bi] <= dfsOut_[ai];
}

} // namespace lev::analysis
