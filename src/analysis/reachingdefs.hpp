// Classic reaching-definitions dataflow over virtual registers.
//
// The IR is not SSA, so data dependence between instructions is recovered
// here: a use of %v in instruction I depends on every definition of %v that
// reaches I. Function parameters act as definitions at the entry.
#pragma once

#include <vector>

#include "analysis/bitset.hpp"
#include "analysis/cfg.hpp"

namespace lev::analysis {

/// Reaching definitions for one function. Definitions are indexed densely;
/// index 0..numParams-1 are the implicit parameter definitions, the rest map
/// to defining instructions.
class ReachingDefs {
public:
  explicit ReachingDefs(const Cfg& cfg);

  int numDefs() const { return static_cast<int>(defInst_.size()); }

  /// Instruction id of a definition, or -1 for parameter definitions.
  int defInst(int defIdx) const {
    return defInst_[static_cast<std::size_t>(defIdx)];
  }
  /// Register defined by a definition.
  int defReg(int defIdx) const {
    return defReg_[static_cast<std::size_t>(defIdx)];
  }

  /// Definition indices of register `reg` reaching instruction `instId`
  /// (computed on the fly from the block-entry sets; cheap).
  std::vector<int> reachingDefsOf(int instId, int reg) const;

  /// All definition indices whose register is used by `instId`.
  std::vector<int> reachingDefsForUses(int instId) const;

  /// Definition index of an instruction (its own def), or -1.
  int defIndexOfInst(int instId) const {
    return instDefIdx_[static_cast<std::size_t>(instId)];
  }

private:
  const ir::Function& fn_;
  std::vector<int> defInst_;          // defIdx -> inst id (-1 = param)
  std::vector<int> defReg_;           // defIdx -> register
  std::vector<int> instDefIdx_;       // inst id -> defIdx or -1
  std::vector<std::vector<int>> defsOfReg_; // reg -> def indices
  std::vector<BitSet> blockIn_;       // block -> defs live at entry
  std::vector<const ir::Inst*> instById_;
};

} // namespace lev::analysis
