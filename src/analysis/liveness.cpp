#include "analysis/liveness.hpp"

namespace lev::analysis {

Liveness::Liveness(const Cfg& cfg) {
  const ir::Function& fn = cfg.function();
  const int numBlocks = cfg.numBlocks();
  const std::size_t nr = static_cast<std::size_t>(fn.numRegs());

  // use[b]: registers read before any write in b.
  // def[b]: registers written in b.
  std::vector<BitSet> use(static_cast<std::size_t>(numBlocks), BitSet(nr));
  std::vector<BitSet> def(static_cast<std::size_t>(numBlocks), BitSet(nr));
  std::vector<int> regs;
  for (int b = 0; b < numBlocks; ++b) {
    for (const ir::Inst& inst : fn.block(b).insts) {
      inst.uses(regs);
      for (int r : regs)
        if (!def[static_cast<std::size_t>(b)].test(static_cast<std::size_t>(r)))
          use[static_cast<std::size_t>(b)].set(static_cast<std::size_t>(r));
      if (inst.dst >= 0)
        def[static_cast<std::size_t>(b)].set(
            static_cast<std::size_t>(inst.dst));
    }
  }

  liveIn_.assign(static_cast<std::size_t>(numBlocks), BitSet(nr));
  liveOut_.assign(static_cast<std::size_t>(numBlocks), BitSet(nr));

  bool changed = true;
  while (changed) {
    changed = false;
    // Iterate in reverse RPO for faster convergence of the backward problem.
    const auto& order = cfg.rpo();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int b = *it;
      BitSet out(nr);
      for (int s : cfg.succs(b))
        if (s != cfg.virtualExit())
          out.unionWith(liveIn_[static_cast<std::size_t>(s)]);
      if (!(out == liveOut_[static_cast<std::size_t>(b)])) {
        liveOut_[static_cast<std::size_t>(b)] = out;
        changed = true;
      }
      BitSet in = out;
      in.subtract(def[static_cast<std::size_t>(b)]);
      in.unionWith(use[static_cast<std::size_t>(b)]);
      if (!(in == liveIn_[static_cast<std::size_t>(b)])) {
        liveIn_[static_cast<std::size_t>(b)] = in;
        changed = true;
      }
    }
  }
}

} // namespace lev::analysis
