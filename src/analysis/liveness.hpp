// Backward liveness of virtual registers, used by the register allocator.
#pragma once

#include <vector>

#include "analysis/bitset.hpp"
#include "analysis/cfg.hpp"

namespace lev::analysis {

/// Per-block live-in/live-out sets of virtual registers.
class Liveness {
public:
  explicit Liveness(const Cfg& cfg);

  const BitSet& liveIn(int block) const {
    return liveIn_[static_cast<std::size_t>(block)];
  }
  const BitSet& liveOut(int block) const {
    return liveOut_[static_cast<std::size_t>(block)];
  }

private:
  std::vector<BitSet> liveIn_;
  std::vector<BitSet> liveOut_;
};

} // namespace lev::analysis
