// Natural-loop detection from dominator-tree back edges.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/domtree.hpp"

namespace lev::analysis {

/// One natural loop: its header plus the set of member blocks.
struct Loop {
  int header = -1;
  std::vector<int> blocks; // sorted, includes header
};

/// All natural loops of a function plus a per-block nesting depth.
class LoopInfo {
public:
  LoopInfo(const Cfg& cfg, const DomTree& dom);

  const std::vector<Loop>& loops() const { return loops_; }

  /// Nesting depth of a block; 0 = not in any loop.
  int depth(int block) const { return depth_[static_cast<std::size_t>(block)]; }

private:
  std::vector<Loop> loops_;
  std::vector<int> depth_;
};

} // namespace lev::analysis
