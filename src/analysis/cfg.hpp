// Lightweight CFG view over an ir::Function: predecessor/successor lists,
// reverse-postorder, and the reversed graph with a virtual exit used by the
// post-dominator computation.
#pragma once

#include <vector>

#include "ir/ir.hpp"

namespace lev::analysis {

/// Materialized CFG adjacency for one function. Blocks keep their ir ids;
/// an optional virtual exit node (id == numBlocks()) is appended so that
/// functions with multiple Ret/Halt blocks have a single sink.
class Cfg {
public:
  explicit Cfg(const ir::Function& fn);

  const ir::Function& function() const { return fn_; }
  int numBlocks() const { return numBlocks_; }
  /// Node count including the virtual exit.
  int numNodes() const { return numBlocks_ + 1; }
  int virtualExit() const { return numBlocks_; }

  const std::vector<int>& succs(int node) const {
    return succs_[static_cast<std::size_t>(node)];
  }
  const std::vector<int>& preds(int node) const {
    return preds_[static_cast<std::size_t>(node)];
  }

  /// Reverse postorder over real blocks from the entry. Unreachable blocks
  /// are excluded (the verifier rejects them anyway).
  const std::vector<int>& rpo() const { return rpo_; }

  /// Reverse postorder on the reversed graph, starting at the virtual exit
  /// (used for post-dominance).
  const std::vector<int>& reverseRpo() const { return rrpo_; }

private:
  const ir::Function& fn_;
  int numBlocks_ = 0;
  std::vector<std::vector<int>> succs_;
  std::vector<std::vector<int>> preds_;
  std::vector<int> rpo_;
  std::vector<int> rrpo_;
};

} // namespace lev::analysis
