#include "analysis/alias.hpp"

#include <map>

namespace lev::analysis {

AliasInfo::AliasInfo(const ir::Module& mod, const Cfg& cfg,
                     const ReachingDefs& rd) {
  const ir::Function& fn = cfg.function();
  numGlobals_ = static_cast<int>(mod.globals().size());
  const std::size_t ng = static_cast<std::size_t>(numGlobals_);

  std::map<std::string, int> globalIdx;
  for (int g = 0; g < numGlobals_; ++g)
    globalIdx[mod.globals()[static_cast<std::size_t>(g)].name] = g;

  // Per-definition points-to set, solved to a fixpoint over reaching defs.
  const int nd = rd.numDefs();
  std::vector<RegionSet> defRegion(static_cast<std::size_t>(nd));
  for (auto& r : defRegion) r.globals = BitSet(ng);

  // Look up the defining instruction of each definition.
  std::vector<const ir::Inst*> instOf(static_cast<std::size_t>(nd), nullptr);
  for (int b = 0; b < fn.numBlocks(); ++b)
    for (const ir::Inst& inst : fn.block(b).insts)
      if (inst.dst >= 0)
        instOf[static_cast<std::size_t>(rd.defIndexOfInst(inst.id))] = &inst;

  auto transfer = [&](int defIdx) -> bool {
    const ir::Inst* inst = instOf[static_cast<std::size_t>(defIdx)];
    RegionSet next;
    next.globals = BitSet(ng);
    if (inst == nullptr) {
      // Parameter: could be anything the caller passed.
      next.unknown = true;
    } else {
      switch (inst->op) {
      case ir::Op::Lea:
        next.globals.set(
            static_cast<std::size_t>(globalIdx.at(inst->callee)));
        break;
      case ir::Op::Load:
      case ir::Op::Call:
        // Loaded values / call results contribute NO region through
        // arithmetic: mixing an index loaded from memory into `lea X + idx`
        // keeps the access inside X's region (the standard object-based
        // assumption). Using a loaded value directly as a base pointer is
        // still caught: regionOf() treats Load/Call base definitions as
        // unknown.
        break;
      default: {
        // Arithmetic: union of the region sets of register operands. A def
        // built purely from immediates has an empty set (not a pointer).
        std::vector<int> regs;
        inst->uses(regs);
        for (int r : regs)
          for (int d : rd.reachingDefsOf(inst->id, r)) {
            next.globals.unionWith(defRegion[static_cast<std::size_t>(d)].globals);
            next.unknown |= defRegion[static_cast<std::size_t>(d)].unknown;
          }
        break;
      }
      }
    }
    RegionSet& cur = defRegion[static_cast<std::size_t>(defIdx)];
    bool changed = cur.globals.unionWith(next.globals);
    if (next.unknown && !cur.unknown) {
      cur.unknown = true;
      changed = true;
    }
    return changed;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int d = 0; d < nd; ++d) changed |= transfer(d);
  }

  // Region of each memory instruction = union over base-register defs.
  regions_.assign(static_cast<std::size_t>(fn.numInsts()), RegionSet{});
  for (auto& r : regions_) r.globals = BitSet(ng);
  for (int b = 0; b < fn.numBlocks(); ++b)
    for (const ir::Inst& inst : fn.block(b).insts) {
      if (!inst.isLoad() && !inst.isStore()) continue;
      RegionSet& r = regions_[static_cast<std::size_t>(inst.id)];
      if (inst.a.isReg()) {
        for (int d : rd.reachingDefsOf(inst.id, inst.a.reg)) {
          const ir::Inst* def = instOf[static_cast<std::size_t>(d)];
          // A base register whose value came straight out of memory or a
          // call is a laundered pointer: anywhere.
          if (def != nullptr &&
              (def->op == ir::Op::Load || def->op == ir::Op::Call)) {
            r.unknown = true;
            continue;
          }
          r.globals.unionWith(defRegion[static_cast<std::size_t>(d)].globals);
          r.unknown |= defRegion[static_cast<std::size_t>(d)].unknown;
        }
        // A base with no pointer origin at all (pure arithmetic) is an
        // absolute address we know nothing about.
        if (r.empty()) r.unknown = true;
      } else {
        // Immediate absolute address.
        r.unknown = true;
      }
    }
}

} // namespace lev::analysis
