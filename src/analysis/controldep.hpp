// Control-dependence computation (Ferrante/Ottenstein/Warren construction
// over the post-dominator tree).
//
// Block B is control-dependent on branch instruction `br` (in block A) iff
// taking one successor of A guarantees B executes while the other does not —
// equivalently, B lies on a path from A to A's reconvergence point
// ipostdom(A), excluding the reconvergence point itself. This is exactly the
// "true branch dependency" notion Levioso's compiler pass starts from.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/domtree.hpp"

namespace lev::analysis {

/// Control dependences of every block of one function, expressed as sets of
/// *branch instruction ids* (ids of ir::Op::Br instructions).
class ControlDepGraph {
public:
  ControlDepGraph(const Cfg& cfg, const DomTree& postDom);

  /// Branch instruction ids that block `b` is control-dependent on.
  const std::vector<int>& blockDeps(int block) const {
    return deps_[static_cast<std::size_t>(block)];
  }

  /// Reconvergence point of the branch terminating `block`: the immediate
  /// post-dominator of the block, or -1 if it does not reach the exit. Can
  /// return the virtual exit id.
  int reconvergence(int block) const {
    return reconv_[static_cast<std::size_t>(block)];
  }

private:
  std::vector<std::vector<int>> deps_;
  std::vector<int> reconv_;
};

} // namespace lev::analysis
