#include "analysis/controldep.hpp"

#include <algorithm>

namespace lev::analysis {

ControlDepGraph::ControlDepGraph(const Cfg& cfg, const DomTree& postDom) {
  const ir::Function& fn = cfg.function();
  deps_.assign(static_cast<std::size_t>(cfg.numBlocks()), {});
  reconv_.assign(static_cast<std::size_t>(cfg.numBlocks()), -1);

  for (int a = 0; a < cfg.numBlocks(); ++a) {
    const ir::BasicBlock& bb = fn.block(a);
    if (!bb.hasTerminator()) continue;
    const ir::Inst& term = bb.insts.back();
    if (term.op != ir::Op::Br) continue;
    if (!postDom.reachable(a)) continue;
    const int branchId = term.id;
    const int ipdom = postDom.idom(a);
    reconv_[static_cast<std::size_t>(a)] = ipdom;

    // For each CFG edge A -> S where A's reconvergence point does not
    // immediately follow, walk up the post-dominator tree from S to (but not
    // including) ipdom(A); every visited block is control-dependent on A's
    // branch.
    for (int s : cfg.succs(a)) {
      int runner = s;
      while (runner != ipdom && runner >= 0 &&
             runner != cfg.virtualExit()) {
        deps_[static_cast<std::size_t>(runner)].push_back(branchId);
        runner = postDom.idom(runner);
      }
    }
  }

  // A block reached from both successors (e.g. a loop header that is its own
  // reconvergence-path member) would be recorded twice; dedupe.
  for (auto& d : deps_) {
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
}

} // namespace lev::analysis
