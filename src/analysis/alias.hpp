// Region-based may-alias analysis for memory dependence propagation.
//
// Memory is partitioned into regions, one per global object plus a single
// "unknown" region. Each memory instruction's base address is traced through
// register dataflow to the lea instructions that created it; instructions
// whose base cannot be resolved (values loaded from memory, call results,
// mixtures of pointers) fall into the unknown region. Two accesses may alias
// iff their region sets intersect or either one is unknown.
//
// This is intentionally conservative: the Levioso pass only uses it to
// propagate branch-dependency taint through memory, where over-approximation
// is sound (more restriction) and under-approximation would break the
// security guarantee (tested in tests/levioso_security_test.cpp).
#pragma once

#include <vector>

#include "analysis/bitset.hpp"
#include "analysis/cfg.hpp"
#include "analysis/reachingdefs.hpp"

namespace lev::analysis {

/// The region set an address may point into.
struct RegionSet {
  BitSet globals;       ///< bit per module global
  bool unknown = false; ///< may point anywhere (incl. the stack)

  bool mayOverlap(const RegionSet& other) const {
    if (unknown || other.unknown) return true;
    BitSet tmp = globals;
    tmp.subtract(other.globals);
    // Overlap iff subtracting removed something, i.e. counts differ.
    return tmp.count() != globals.count();
  }
  bool empty() const { return !unknown && !globals.any(); }
};

/// Region sets for every memory instruction of one function.
class AliasInfo {
public:
  AliasInfo(const ir::Module& mod, const Cfg& cfg, const ReachingDefs& rd);

  /// Region set of a load/store's address. Instructions that are not memory
  /// operations get an empty set.
  const RegionSet& regionOf(int instId) const {
    return regions_[static_cast<std::size_t>(instId)];
  }

  bool mayAlias(int instA, int instB) const {
    return regionOf(instA).mayOverlap(regionOf(instB));
  }

  int numGlobals() const { return numGlobals_; }

private:
  int numGlobals_ = 0;
  std::vector<RegionSet> regions_; // indexed by instruction id
};

} // namespace lev::analysis
