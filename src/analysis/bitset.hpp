// Dynamic fixed-capacity bitset used by the dataflow analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace lev {

/// A bitset whose capacity is fixed at construction. Word-parallel set
/// operations return whether anything changed so dataflow loops can detect
/// their fixpoint cheaply.
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }

  void set(std::size_t i) {
    LEV_CHECK(i < bits_, "bitset index out of range");
    words_[i >> 6] |= 1ull << (i & 63);
  }
  void reset(std::size_t i) {
    LEV_CHECK(i < bits_, "bitset index out of range");
    words_[i >> 6] &= ~(1ull << (i & 63));
  }
  bool test(std::size_t i) const {
    LEV_CHECK(i < bits_, "bitset index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// this |= other. Returns true if any bit changed.
  bool unionWith(const BitSet& other) {
    LEV_CHECK(bits_ == other.bits_, "bitset size mismatch");
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t before = words_[i];
      words_[i] |= other.words_[i];
      changed |= words_[i] != before;
    }
    return changed;
  }

  /// this &= ~other.
  void subtract(const BitSet& other) {
    LEV_CHECK(bits_ == other.bits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= ~other.words_[i];
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool operator==(const BitSet&) const = default;

  /// Invoke fn(index) for every set bit, in increasing order.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

} // namespace lev
