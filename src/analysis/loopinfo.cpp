#include "analysis/loopinfo.hpp"

#include <algorithm>

namespace lev::analysis {

LoopInfo::LoopInfo(const Cfg& cfg, const DomTree& dom) {
  const int numBlocks = cfg.numBlocks();
  depth_.assign(static_cast<std::size_t>(numBlocks), 0);

  // A back edge t -> h exists when h dominates t. Its natural loop is h plus
  // all blocks that can reach t without passing through h.
  for (int t = 0; t < numBlocks; ++t) {
    for (int h : cfg.succs(t)) {
      if (h == cfg.virtualExit() || !dom.dominates(h, t)) continue;
      Loop loop;
      loop.header = h;
      std::vector<bool> in(static_cast<std::size_t>(numBlocks), false);
      in[static_cast<std::size_t>(h)] = true;
      std::vector<int> work;
      if (t != h) {
        in[static_cast<std::size_t>(t)] = true;
        work.push_back(t);
      }
      while (!work.empty()) {
        const int b = work.back();
        work.pop_back();
        for (int p : cfg.preds(b))
          if (!in[static_cast<std::size_t>(p)]) {
            in[static_cast<std::size_t>(p)] = true;
            work.push_back(p);
          }
      }
      for (int b = 0; b < numBlocks; ++b)
        if (in[static_cast<std::size_t>(b)]) loop.blocks.push_back(b);
      loops_.push_back(std::move(loop));
    }
  }

  // Merge loops with the same header (multiple back edges).
  std::sort(loops_.begin(), loops_.end(),
            [](const Loop& a, const Loop& b) { return a.header < b.header; });
  std::vector<Loop> merged;
  for (Loop& loop : loops_) {
    if (!merged.empty() && merged.back().header == loop.header) {
      auto& blocks = merged.back().blocks;
      blocks.insert(blocks.end(), loop.blocks.begin(), loop.blocks.end());
      std::sort(blocks.begin(), blocks.end());
      blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
    } else {
      merged.push_back(std::move(loop));
    }
  }
  loops_ = std::move(merged);

  for (const Loop& loop : loops_)
    for (int b : loop.blocks) ++depth_[static_cast<std::size_t>(b)];
}

} // namespace lev::analysis
