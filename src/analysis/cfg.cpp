#include "analysis/cfg.hpp"

#include <algorithm>

namespace lev::analysis {

namespace {

/// Iterative postorder DFS over an adjacency list, then reversed.
std::vector<int> reversePostorder(int start,
                                  const std::vector<std::vector<int>>& adj) {
  std::vector<int> order;
  std::vector<int> state(adj.size(), 0); // 0 = unseen, 1 = on stack, 2 = done
  // Stack of (node, next-child-index).
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(start, 0);
  state[static_cast<std::size_t>(start)] = 1;
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    const auto& kids = adj[static_cast<std::size_t>(node)];
    if (idx < kids.size()) {
      const int child = kids[idx++];
      if (state[static_cast<std::size_t>(child)] == 0) {
        state[static_cast<std::size_t>(child)] = 1;
        stack.emplace_back(child, 0);
      }
    } else {
      state[static_cast<std::size_t>(node)] = 2;
      order.push_back(node);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

} // namespace

Cfg::Cfg(const ir::Function& fn) : fn_(fn), numBlocks_(fn.numBlocks()) {
  const std::size_t n = static_cast<std::size_t>(numNodes());
  succs_.assign(n, {});
  preds_.assign(n, {});
  for (int b = 0; b < numBlocks_; ++b) {
    const auto succs = fn.successors(b);
    for (int s : succs) {
      succs_[static_cast<std::size_t>(b)].push_back(s);
      preds_[static_cast<std::size_t>(s)].push_back(b);
    }
    // Ret/Halt blocks flow to the virtual exit.
    if (succs.empty()) {
      succs_[static_cast<std::size_t>(b)].push_back(virtualExit());
      preds_[static_cast<std::size_t>(virtualExit())].push_back(b);
    }
  }

  rpo_ = reversePostorder(0, succs_);
  // Drop the virtual exit from the forward RPO: forward analyses operate on
  // real blocks only.
  std::erase(rpo_, virtualExit());

  rrpo_ = reversePostorder(virtualExit(), preds_);
}

} // namespace lev::analysis
