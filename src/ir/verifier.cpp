#include "ir/verifier.hpp"

#include <vector>

namespace lev::ir {

namespace {

[[noreturn]] void fail(const Function& fn, const std::string& msg) {
  throw VerifyError("in @" + fn.name() + ": " + msg);
}

void verifyValue(const Function& fn, const Value& v) {
  if (v.isReg() && (v.reg < 0 || v.reg >= fn.numRegs()))
    fail(fn, "register out of range: %v" + std::to_string(v.reg));
}

void verifyFunction(const Module& mod, const Function& fn) {
  if (fn.numBlocks() == 0) fail(fn, "no blocks");
  for (int b = 0; b < fn.numBlocks(); ++b) {
    const BasicBlock& bb = fn.block(b);
    if (bb.insts.empty()) fail(fn, "empty block " + bb.label);
    if (!isTerminator(bb.insts.back().op))
      fail(fn, "block " + bb.label + " does not end in a terminator");
    for (std::size_t i = 0; i < bb.insts.size(); ++i) {
      const Inst& inst = bb.insts[i];
      if (isTerminator(inst.op) && i + 1 != bb.insts.size())
        fail(fn, "terminator in the middle of block " + bb.label);
      verifyValue(fn, inst.a);
      verifyValue(fn, inst.b);
      for (const Value& arg : inst.args) verifyValue(fn, arg);
      if (inst.dst >= fn.numRegs())
        fail(fn, "def register out of range: %v" + std::to_string(inst.dst));

      switch (inst.op) {
      case Op::Load:
        if (inst.dst < 0) fail(fn, "load without destination");
        [[fallthrough]];
      case Op::Store:
        if (inst.size != 1 && inst.size != 2 && inst.size != 4 &&
            inst.size != 8)
          fail(fn, "bad memory access size " + std::to_string(inst.size));
        if (inst.a.isNone()) fail(fn, "memory op without base");
        if (inst.op == Op::Store && inst.b.isNone())
          fail(fn, "store without data operand");
        break;
      case Op::Br:
        if (inst.succ[0] < 0 || inst.succ[0] >= fn.numBlocks() ||
            inst.succ[1] < 0 || inst.succ[1] >= fn.numBlocks())
          fail(fn, "br with invalid successor");
        if (inst.a.isNone()) fail(fn, "br without condition");
        break;
      case Op::Jmp:
        if (inst.succ[0] < 0 || inst.succ[0] >= fn.numBlocks())
          fail(fn, "jmp with invalid successor");
        break;
      case Op::Call: {
        const Function* callee = mod.findFunction(inst.callee);
        if (callee == nullptr) fail(fn, "unknown callee @" + inst.callee);
        if (static_cast<int>(inst.args.size()) != callee->numParams())
          fail(fn, "call to @" + inst.callee + " with " +
                       std::to_string(inst.args.size()) + " args, expected " +
                       std::to_string(callee->numParams()));
        break;
      }
      case Op::Lea:
        if (mod.findGlobal(inst.callee) == nullptr)
          fail(fn, "lea of unknown global @" + inst.callee);
        if (inst.dst < 0) fail(fn, "lea without destination");
        break;
      case Op::Flush:
        if (inst.a.isNone()) fail(fn, "flush without base");
        if (inst.dst < 0) fail(fn, "flush without destination");
        break;
      default:
        if (producesValue(inst.op) && inst.dst < 0)
          fail(fn, std::string(opName(inst.op)) + " without destination");
        break;
      }
    }
  }

  // Reachability from the entry block.
  std::vector<bool> seen(static_cast<std::size_t>(fn.numBlocks()), false);
  std::vector<int> work = {0};
  seen[0] = true;
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    for (int s : fn.successors(b))
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        work.push_back(s);
      }
  }
  for (int b = 0; b < fn.numBlocks(); ++b)
    if (!seen[static_cast<std::size_t>(b)])
      fail(fn, "unreachable block " + fn.block(b).label);
}

} // namespace

void verify(const Module& mod) {
  for (const auto& fn : mod.functions()) verifyFunction(mod, *fn);
}

} // namespace lev::ir
