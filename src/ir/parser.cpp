#include "ir/parser.hpp"

#include <map>
#include <optional>

#include "support/strings.hpp"

namespace lev::ir {

namespace {

/// Parses line-oriented IR text. Two passes per function: first collect block
/// labels (forward branch targets), then parse instructions.
class Parser {
public:
  explicit Parser(std::string_view text) : lines_(split(text, '\n')) {}

  Module run() {
    Module mod;
    while (!atEnd()) {
      std::string_view line = peek();
      if (line.empty() || line[0] == '#') {
        ++pos_;
        continue;
      }
      if (startsWith(line, "func "))
        parseFunction(mod);
      else if (startsWith(line, "global "))
        parseGlobal(mod);
      else
        fail("expected 'func' or 'global'");
    }
    return mod;
  }

private:
  bool atEnd() const { return pos_ >= lines_.size(); }
  std::string_view peek() const { return trim(lines_[pos_]); }
  int lineNo() const { return static_cast<int>(pos_) + 1; }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(lineNo(), msg);
  }

  std::int64_t parseIntOrFail(std::string_view s) {
    std::int64_t v = 0;
    if (!parseInt(s, v)) fail("bad integer '" + std::string(s) + "'");
    return v;
  }

  int parseRegToken(std::string_view tok, Function& fn) {
    if (!startsWith(tok, "%v")) fail("expected register, got " + std::string(tok));
    const std::int64_t r = parseIntOrFail(tok.substr(2));
    fn.noteReg(static_cast<int>(r));
    return static_cast<int>(r);
  }

  Value parseValue(std::string_view tok, Function& fn) {
    tok = trim(tok);
    if (startsWith(tok, "%v")) return Value::makeReg(parseRegToken(tok, fn));
    return Value::makeImm(parseIntOrFail(tok));
  }

  int blockByLabel(const std::string& label) {
    auto it = blockIds_.find(label);
    if (it == blockIds_.end()) fail("unknown block label " + label);
    return it->second;
  }

  void parseGlobal(Module& mod) {
    // global @name size N align A [init <hex>]
    auto toks = splitWs(peek());
    const bool hasInit = toks.size() == 8 && toks[6] == "init";
    if ((toks.size() != 6 && !hasInit) || toks[2] != "size" ||
        toks[4] != "align" || !startsWith(toks[1], "@"))
      fail("malformed global declaration");
    const std::string name(toks[1].substr(1));
    const auto size = static_cast<std::uint64_t>(parseIntOrFail(toks[3]));
    Global& g = mod.addGlobal(
        name, size, static_cast<std::uint64_t>(parseIntOrFail(toks[5])));
    if (hasInit) {
      const std::string_view hex = toks[7];
      if (hex.empty() || hex.size() % 2 != 0 || hex.size() / 2 > size)
        fail("malformed global init payload");
      g.init.reserve(hex.size() / 2);
      for (std::size_t i = 0; i < hex.size(); i += 2) {
        int byte = 0;
        for (int j = 0; j < 2; ++j) {
          const char c = hex[i + static_cast<std::size_t>(j)];
          int digit;
          if (c >= '0' && c <= '9')
            digit = c - '0';
          else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
          else
            fail("bad hex digit in global init");
          byte = byte * 16 + digit;
        }
        g.init.push_back(static_cast<std::uint8_t>(byte));
      }
    }
    ++pos_;
  }

  void parseFunction(Module& mod) {
    // func @name(%v0, %v1) {
    std::string_view header = peek();
    const std::size_t open = header.find('(');
    const std::size_t close = header.find(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open || header.find('{', close) == std::string_view::npos)
      fail("malformed function header");
    std::string_view nameTok = trim(header.substr(5, open - 5));
    if (!startsWith(nameTok, "@")) fail("function name must start with @");
    std::string_view paramsText = header.substr(open + 1, close - open - 1);
    int numParams = 0;
    if (!trim(paramsText).empty())
      numParams = static_cast<int>(split(paramsText, ',').size());
    Function& fn = mod.addFunction(std::string(nameTok.substr(1)), numParams);
    ++pos_;

    // Pass 1: collect block labels up to the closing brace.
    blockIds_.clear();
    const std::size_t bodyStart = pos_;
    for (std::size_t p = pos_; p < lines_.size(); ++p) {
      std::string_view line = trim(lines_[p]);
      if (line == "}") break;
      if (!line.empty() && line.back() == ':' && line[0] != '#') {
        std::string label(line.substr(0, line.size() - 1));
        if (blockIds_.count(label)) fail("duplicate label " + label);
        blockIds_[label] = fn.createBlock(label);
      }
    }
    if (fn.numBlocks() == 0) fail("function has no blocks");

    // Pass 2: parse instructions.
    pos_ = bodyStart;
    int current = -1;
    while (!atEnd()) {
      std::string_view line = peek();
      if (line == "}") {
        ++pos_;
        return;
      }
      if (line.empty() || line[0] == '#') {
        ++pos_;
        continue;
      }
      if (line.back() == ':') {
        current = blockByLabel(std::string(line.substr(0, line.size() - 1)));
        ++pos_;
        continue;
      }
      if (current < 0) fail("instruction before first label");
      // parseInst reports errors against the current line; advance after.
      fn.addInst(current, parseInst(line, fn));
      ++pos_;
    }
    fail("missing closing brace");
  }

  Inst parseInst(std::string_view line, Function& fn) {
    Inst inst;
    // Optional "%vN = " destination prefix.
    std::string_view rest = line;
    const std::size_t eq = line.find('=');
    if (startsWith(trim(line), "%v") && eq != std::string_view::npos) {
      inst.dst = parseRegToken(trim(line.substr(0, eq)), fn);
      rest = trim(line.substr(eq + 1));
    }
    auto toks = splitWs(rest);
    if (toks.empty()) fail("empty instruction");
    const std::string mnemonic(toks[0]);

    auto operandsText = trim(rest.substr(mnemonic.size()));
    auto commaParts = split(operandsText, ',');
    for (auto& p : commaParts) p = trim(p);

    auto expectParts = [&](std::size_t n) {
      if (commaParts.size() != n ||
          (n > 0 && commaParts[0].empty() && n == 1 && !operandsText.empty()))
        fail("operand count mismatch for " + mnemonic);
    };

    // Memory ops: "load.N base + off" / "store.N base + off, data"
    if (startsWith(mnemonic, "load.") || startsWith(mnemonic, "store.")) {
      const bool isLoad = startsWith(mnemonic, "load.");
      inst.op = isLoad ? Op::Load : Op::Store;
      inst.size = static_cast<int>(
          parseIntOrFail(std::string_view(mnemonic).substr(isLoad ? 5 : 6)));
      if (inst.size != 1 && inst.size != 2 && inst.size != 4 && inst.size != 8)
        fail("bad access size");
      // First comma part: "base + off".
      if (commaParts.empty()) fail("missing address");
      auto plus = commaParts[0].find('+');
      if (plus == std::string_view::npos) fail("address must be 'base + off'");
      inst.a = parseValue(commaParts[0].substr(0, plus), fn);
      inst.off = parseIntOrFail(commaParts[0].substr(plus + 1));
      if (isLoad) {
        expectParts(1);
        if (inst.dst < 0) fail("load needs a destination");
      } else {
        expectParts(2);
        inst.b = parseValue(commaParts[1], fn);
      }
      return inst;
    }

    if (mnemonic == "flush") {
      // flush base + off
      inst.op = Op::Flush;
      if (inst.dst < 0) fail("flush needs a destination");
      auto plus = operandsText.find('+');
      if (plus == std::string_view::npos) fail("flush must be 'base + off'");
      inst.a = parseValue(operandsText.substr(0, plus), fn);
      inst.off = parseIntOrFail(operandsText.substr(plus + 1));
      return inst;
    }
    if (mnemonic == "lea") {
      // lea @name + off
      inst.op = Op::Lea;
      if (inst.dst < 0) fail("lea needs a destination");
      auto plus = operandsText.find('+');
      if (plus == std::string_view::npos) fail("lea must be '@name + off'");
      auto nameTok = trim(operandsText.substr(0, plus));
      if (!startsWith(nameTok, "@")) fail("lea target must start with @");
      inst.callee = std::string(nameTok.substr(1));
      inst.off = parseIntOrFail(operandsText.substr(plus + 1));
      return inst;
    }

    if (mnemonic == "br") {
      expectParts(3);
      inst.op = Op::Br;
      inst.a = parseValue(commaParts[0], fn);
      inst.succ[0] = blockByLabel(std::string(commaParts[1]));
      inst.succ[1] = blockByLabel(std::string(commaParts[2]));
      return inst;
    }
    if (mnemonic == "jmp") {
      expectParts(1);
      inst.op = Op::Jmp;
      inst.succ[0] = blockByLabel(std::string(commaParts[0]));
      return inst;
    }
    if (mnemonic == "call") {
      // call @name(arg, arg)
      inst.op = Op::Call;
      auto open = operandsText.find('(');
      auto close = operandsText.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos)
        fail("malformed call");
      auto nameTok = trim(operandsText.substr(0, open));
      if (!startsWith(nameTok, "@")) fail("callee must start with @");
      inst.callee = std::string(nameTok.substr(1));
      auto argsText = trim(operandsText.substr(open + 1, close - open - 1));
      if (!argsText.empty())
        for (auto part : split(argsText, ','))
          inst.args.push_back(parseValue(part, fn));
      return inst;
    }
    if (mnemonic == "ret") {
      expectParts(1);
      inst.op = Op::Ret;
      inst.a = parseValue(commaParts[0], fn);
      return inst;
    }
    if (mnemonic == "halt") {
      inst.op = Op::Halt;
      return inst;
    }
    if (mnemonic == "mov") {
      expectParts(1);
      inst.op = Op::Mov;
      if (inst.dst < 0) fail("mov needs a destination");
      inst.a = parseValue(commaParts[0], fn);
      return inst;
    }

    // Binary ALU ops.
    static const std::map<std::string, Op> kBinOps = {
        {"add", Op::Add},       {"sub", Op::Sub},       {"mul", Op::Mul},
        {"divs", Op::DivS},     {"divu", Op::DivU},     {"rems", Op::RemS},
        {"remu", Op::RemU},     {"and", Op::And},       {"or", Op::Or},
        {"xor", Op::Xor},       {"shl", Op::Shl},       {"shrl", Op::ShrL},
        {"shra", Op::ShrA},     {"cmpeq", Op::CmpEq},   {"cmpne", Op::CmpNe},
        {"cmplts", Op::CmpLtS}, {"cmpltu", Op::CmpLtU}, {"cmpges", Op::CmpGeS},
        {"cmpgeu", Op::CmpGeU},
    };
    auto it = kBinOps.find(mnemonic);
    if (it == kBinOps.end()) fail("unknown mnemonic " + mnemonic);
    expectParts(2);
    inst.op = it->second;
    if (inst.dst < 0) fail(mnemonic + " needs a destination");
    inst.a = parseValue(commaParts[0], fn);
    inst.b = parseValue(commaParts[1], fn);
    return inst;
  }

  std::vector<std::string_view> lines_;
  std::size_t pos_ = 0;
  std::map<std::string, int> blockIds_;
};

} // namespace

Module parseModule(std::string_view text) { return Parser(text).run(); }

} // namespace lev::ir
