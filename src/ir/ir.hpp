// The compiler IR the Levioso pass runs on.
//
// A deliberately small, register-based three-address IR:
//  - virtual registers %v0, %v1, ... (not SSA; multiple defs are allowed,
//    dataflow analyses use reaching definitions instead of phi nodes),
//  - basic blocks ending in exactly one terminator,
//  - byte-addressed memory accessed through typed loads/stores with a
//    base register + constant offset, so that address dataflow is explicit,
//  - direct calls with a register-based ABI (lowered by the backend).
//
// The Levioso paper's analysis is performed by LLVM on real programs; this IR
// carries the same information the pass needs (a CFG with explicit branches
// and register/memory dataflow) without the LLVM dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace lev::ir {

/// IR operation kinds. Binary ALU ops take two value operands; memory ops
/// take a base register plus a constant byte offset.
enum class Op {
  // Arithmetic / logic: dst = a <op> b
  Add, Sub, Mul, DivS, DivU, RemS, RemU,
  And, Or, Xor, Shl, ShrL, ShrA,
  // Comparisons producing 0/1: dst = a <cmp> b
  CmpEq, CmpNe, CmpLtS, CmpLtU, CmpGeS, CmpGeU,
  // dst = a
  Mov,
  // dst = &global + off   (global named by `callee`)
  Lea,
  // dst = zero-extended mem[a + off], size bytes (1/2/4/8)
  Load,
  // mem[a + off] = b, size bytes
  Store,
  // flush the cache line containing a + off; dst = 0 (usable to order
  // subsequent loads behind the flush)
  Flush,
  // if (a != 0) goto succ[0] else succ[1]
  Br,
  // goto succ[0]
  Jmp,
  // dst = callee(args...)   (dst may be absent)
  Call,
  // return a (a may be absent, encoded as immediate 0)
  Ret,
  // stop the machine
  Halt,
};

/// True for ops that end a basic block.
bool isTerminator(Op op);
/// True for ops that define a destination register (Call counts when it has
/// a result).
bool producesValue(Op op);
/// Short mnemonic used by the printer; stable, parseable.
const char* opName(Op op);

/// An operand: either a virtual register or a 64-bit immediate.
struct Value {
  enum class Kind { None, Reg, Imm };
  Kind kind = Kind::None;
  int reg = -1;             ///< valid when kind == Reg
  std::int64_t imm = 0;     ///< valid when kind == Imm

  static Value none() { return {}; }
  static Value makeReg(int r) {
    Value v;
    v.kind = Kind::Reg;
    v.reg = r;
    return v;
  }
  static Value makeImm(std::int64_t i) {
    Value v;
    v.kind = Kind::Imm;
    v.imm = i;
    return v;
  }
  bool isReg() const { return kind == Kind::Reg; }
  bool isImm() const { return kind == Kind::Imm; }
  bool isNone() const { return kind == Kind::None; }
  bool operator==(const Value&) const = default;
};

/// One IR instruction. Plain data; owned by its basic block.
struct Inst {
  Op op = Op::Halt;
  int id = -1;            ///< unique within the function, assigned by Function
  int block = -1;         ///< owning block id
  int dst = -1;           ///< destination virtual register, -1 if none
  Value a;                ///< first operand (base register for memory ops)
  Value b;                ///< second operand (store data for Store)
  std::int64_t off = 0;   ///< byte offset for Load/Store
  int size = 8;           ///< access size in bytes for Load/Store
  int succ[2] = {-1, -1}; ///< successor block ids for Br (then/else) and Jmp
  std::string callee;     ///< for Call; may name a global for address ops
  std::vector<Value> args; ///< call arguments

  bool isBranch() const { return op == Op::Br; }
  bool isLoad() const { return op == Op::Load; }
  bool isStore() const { return op == Op::Store; }
  bool isCall() const { return op == Op::Call; }

  /// Virtual registers read by this instruction (operands + args).
  void uses(std::vector<int>& out) const;
  /// Destination register or -1.
  int def() const { return dst; }
};

/// A basic block: straight-line instructions plus one trailing terminator.
struct BasicBlock {
  int id = -1;
  std::string label;
  std::vector<Inst> insts;

  const Inst& terminator() const {
    LEV_CHECK(!insts.empty() && isTerminator(insts.back().op),
              "block has no terminator");
    return insts.back();
  }
  bool hasTerminator() const {
    return !insts.empty() && isTerminator(insts.back().op);
  }
};

/// A function: blocks with stable ids; block 0 is the entry.
class Function {
public:
  Function(std::string name, int numParams);

  const std::string& name() const { return name_; }
  int numParams() const { return numParams_; }
  /// Parameter i lives in virtual register i on entry.
  int paramReg(int i) const {
    LEV_CHECK(i >= 0 && i < numParams_, "bad param index");
    return i;
  }

  int createBlock(std::string label = "");
  BasicBlock& block(int id) {
    LEV_CHECK(id >= 0 && id < static_cast<int>(blocks_.size()), "bad block id");
    return blocks_[static_cast<std::size_t>(id)];
  }
  const BasicBlock& block(int id) const {
    LEV_CHECK(id >= 0 && id < static_cast<int>(blocks_.size()), "bad block id");
    return blocks_[static_cast<std::size_t>(id)];
  }
  int numBlocks() const { return static_cast<int>(blocks_.size()); }

  /// Allocate a fresh virtual register.
  int newReg() { return numRegs_++; }
  int numRegs() const { return numRegs_; }
  /// Bump the register counter to cover register `r` (used by the parser).
  void noteReg(int r) {
    if (r >= numRegs_) numRegs_ = r + 1;
  }

  /// Append an instruction to a block, assigning its id. Returns the id.
  int addInst(int blockId, Inst inst);
  int numInsts() const { return nextInstId_; }

  /// Successor block ids of a block (0, 1, or 2 entries).
  std::vector<int> successors(int blockId) const;
  /// Predecessors, recomputed on demand.
  std::vector<std::vector<int>> predecessors() const;

  /// Re-assign dense instruction ids in block/layout order. Call after bulk
  /// edits; analyses require dense ids.
  void renumber();

  /// Drop blocks unreachable from the entry and compact block ids
  /// (used after branch folding). Successor ids are rewritten.
  void removeUnreachableBlocks();

private:
  std::string name_;
  int numParams_ = 0;
  int numRegs_ = 0;
  int nextInstId_ = 0;
  std::vector<BasicBlock> blocks_;
};

/// A global data object. The backend assigns its address at layout time.
struct Global {
  std::string name;
  std::uint64_t size = 0;
  std::uint64_t align = 8;
  std::vector<std::uint8_t> init; ///< may be shorter than size (rest zero)
};

/// A whole program: functions plus global data. `main` is the entry point.
class Module {
public:
  Function& addFunction(std::string name, int numParams);
  Function* findFunction(const std::string& name);
  const Function* findFunction(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const {
    return funcs_;
  }

  /// The returned reference is into a by-value vector: it is invalidated by
  /// the next addGlobal call. Fill the global before adding another.
  Global& addGlobal(std::string name, std::uint64_t size,
                    std::uint64_t align = 8);
  Global* findGlobal(const std::string& name);
  const Global* findGlobal(const std::string& name) const;
  const std::vector<Global>& globals() const { return globals_; }

private:
  std::vector<std::unique_ptr<Function>> funcs_;
  std::vector<Global> globals_;
};

} // namespace lev::ir
