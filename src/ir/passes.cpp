#include "ir/passes.hpp"

#include <map>
#include <vector>

namespace lev::ir {

namespace {

/// Constant evaluation of a binary IR op (mirrors isa::evalAlu semantics so
/// folding never changes program behaviour).
bool evalConst(Op op, std::int64_t a, std::int64_t b, std::int64_t& out) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
  case Op::Add: out = a + b; return true;
  case Op::Sub: out = a - b; return true;
  case Op::Mul: out = static_cast<std::int64_t>(ua * ub); return true;
  case Op::DivS:
    if (b == 0) { out = -1; return true; }
    if (a == INT64_MIN && b == -1) { out = a; return true; }
    out = a / b;
    return true;
  case Op::DivU:
    out = b == 0 ? -1 : static_cast<std::int64_t>(ua / ub);
    return true;
  case Op::RemS:
    if (b == 0) { out = a; return true; }
    if (a == INT64_MIN && b == -1) { out = 0; return true; }
    out = a % b;
    return true;
  case Op::RemU:
    out = b == 0 ? a : static_cast<std::int64_t>(ua % ub);
    return true;
  case Op::And: out = a & b; return true;
  case Op::Or: out = a | b; return true;
  case Op::Xor: out = a ^ b; return true;
  case Op::Shl: out = static_cast<std::int64_t>(ua << (ub & 63)); return true;
  case Op::ShrL: out = static_cast<std::int64_t>(ua >> (ub & 63)); return true;
  case Op::ShrA: out = a >> (ub & 63); return true;
  case Op::CmpEq: out = a == b; return true;
  case Op::CmpNe: out = a != b; return true;
  case Op::CmpLtS: out = a < b; return true;
  case Op::CmpLtU: out = ua < ub; return true;
  case Op::CmpGeS: out = a >= b; return true;
  case Op::CmpGeU: out = ua >= ub; return true;
  default:
    return false;
  }
}

bool isPure(const Inst& inst) {
  switch (inst.op) {
  case Op::Store:
  case Op::Flush:
  case Op::Call:
  case Op::Br:
  case Op::Jmp:
  case Op::Ret:
  case Op::Halt:
    return false;
  default:
    return true;
  }
}

} // namespace

OptStats foldConstants(Function& fn) {
  OptStats stats;
  for (int b = 0; b < fn.numBlocks(); ++b) {
    BasicBlock& bb = fn.block(b);
    // Local constant environment: vreg -> known value, killed on redefines.
    std::map<int, std::int64_t> env;
    auto resolve = [&](Value& v) {
      if (!v.isReg()) return;
      auto it = env.find(v.reg);
      if (it != env.end()) v = Value::makeImm(it->second);
    };

    for (Inst& inst : bb.insts) {
      resolve(inst.a);
      resolve(inst.b);
      for (Value& arg : inst.args) resolve(arg);

      if (inst.op == Op::Mov && inst.a.isImm()) {
        env[inst.dst] = inst.a.imm;
        continue;
      }
      std::int64_t folded = 0;
      if (inst.dst >= 0 && inst.a.isImm() && inst.b.isImm() &&
          evalConst(inst.op, inst.a.imm, inst.b.imm, folded)) {
        inst.op = Op::Mov;
        inst.a = Value::makeImm(folded);
        inst.b = Value::none();
        env[inst.dst] = folded;
        ++stats.constantsFolded;
        continue;
      }
      // A branch on a constant condition becomes an unconditional jump.
      if (inst.op == Op::Br && inst.a.isImm()) {
        const int target = inst.a.imm != 0 ? inst.succ[0] : inst.succ[1];
        inst.op = Op::Jmp;
        inst.a = Value::none();
        inst.succ[0] = target;
        inst.succ[1] = -1;
        ++stats.branchesFolded;
        continue;
      }
      if (inst.dst >= 0) env.erase(inst.dst);
    }
  }
  return stats;
}

OptStats eliminateDeadCode(Function& fn) {
  OptStats stats;
  // Global mark phase: roots are impure instructions; uses propagate
  // liveness to defs via reaching-definition-free worklist over registers
  // (conservative: any use anywhere keeps every def of that register).
  std::vector<bool> regUsed(static_cast<std::size_t>(fn.numRegs()), false);
  bool changed = true;
  std::vector<int> uses;
  // Fixpoint: a register is used if an alive instruction reads it; an
  // instruction is alive if impure or its dst register is used.
  while (changed) {
    changed = false;
    for (int b = 0; b < fn.numBlocks(); ++b)
      for (const Inst& inst : fn.block(b).insts) {
        const bool alive =
            !isPure(inst) ||
            (inst.dst >= 0 && regUsed[static_cast<std::size_t>(inst.dst)]);
        if (!alive) continue;
        inst.uses(uses);
        for (int r : uses)
          if (!regUsed[static_cast<std::size_t>(r)]) {
            regUsed[static_cast<std::size_t>(r)] = true;
            changed = true;
          }
      }
  }
  for (int b = 0; b < fn.numBlocks(); ++b) {
    auto& insts = fn.block(b).insts;
    const auto before = insts.size();
    std::erase_if(insts, [&](const Inst& inst) {
      return isPure(inst) &&
             (inst.dst < 0 ||
              !regUsed[static_cast<std::size_t>(inst.dst)]);
    });
    stats.instsRemoved += static_cast<int>(before - insts.size());
  }
  return stats;
}

OptStats localValueNumbering(Function& fn) {
  OptStats stats;
  // Expressions are keyed by opcode + versioned operands; register versions
  // bump on every redefinition so stale operands or stale results can never
  // match.
  struct Key {
    Op op;
    std::int64_t a0, a1, b0, b1; ///< operand encodings (kind, payload)
    std::int64_t off;
    int size;
    std::int64_t memVersion; ///< loads only; -1 otherwise
    auto operator<=>(const Key&) const = default;
  };
  struct Avail {
    int reg;
    std::int64_t version; ///< version of `reg` at insertion
  };

  for (int bidx = 0; bidx < fn.numBlocks(); ++bidx) {
    BasicBlock& bb = fn.block(bidx);
    std::map<Key, Avail> available;
    std::map<int, std::int64_t> regVersion;
    std::map<int, int> copyOf; // reg -> original reg (both live versions)
    std::int64_t memVersion = 0;
    std::int64_t versionClock = 1;

    auto versionOf = [&](int reg) {
      auto it = regVersion.find(reg);
      return it == regVersion.end() ? std::int64_t{0} : it->second;
    };
    auto killReg = [&](int reg) {
      regVersion[reg] = versionClock++;
      copyOf.erase(reg);
      for (auto it = copyOf.begin(); it != copyOf.end();)
        it = it->second == reg ? copyOf.erase(it) : std::next(it);
    };
    auto encode = [&](const Value& v, std::int64_t& e0, std::int64_t& e1) {
      if (v.isReg()) {
        e0 = 1;
        e1 = (static_cast<std::int64_t>(v.reg) << 32) ^ versionOf(v.reg);
      } else if (v.isImm()) {
        e0 = 2;
        e1 = v.imm;
      } else {
        e0 = 0;
        e1 = 0;
      }
    };
    auto makeKey = [&](const Inst& inst) {
      Key key{};
      key.op = inst.op;
      encode(inst.a, key.a0, key.a1);
      encode(inst.b, key.b0, key.b1);
      key.off = inst.off;
      key.size = inst.size;
      key.memVersion = inst.op == Op::Load ? memVersion : -1;
      return key;
    };

    for (Inst& inst : bb.insts) {
      // Copy propagation into operands.
      auto propagate = [&](Value& v) {
        if (!v.isReg()) return;
        auto it = copyOf.find(v.reg);
        if (it != copyOf.end()) {
          v = Value::makeReg(it->second);
          ++stats.copiesPropagated;
        }
      };
      propagate(inst.a);
      propagate(inst.b);
      for (Value& arg : inst.args) propagate(arg);

      // Lea is excluded only because the key has no slot for the symbol.
      const bool numberable = inst.dst >= 0 && isPure(inst) &&
                              inst.op != Op::Mov && inst.op != Op::Lea;

      if (numberable) {
        const Key key = makeKey(inst);
        auto it = available.find(key);
        if (it != available.end() &&
            versionOf(it->second.reg) == it->second.version) {
          const int src = it->second.reg;
          inst.op = Op::Mov;
          inst.a = Value::makeReg(src);
          inst.b = Value::none();
          inst.off = 0;
          ++stats.valuesNumbered;
          killReg(inst.dst);
          copyOf[inst.dst] = src;
          continue;
        }
      }

      if (inst.op == Op::Store || inst.op == Op::Call || inst.op == Op::Flush)
        ++memVersion;

      if (inst.dst >= 0) {
        const Key key = makeKey(inst); // operands encoded pre-kill
        killReg(inst.dst);
        if (inst.op == Op::Mov && inst.a.isReg() && inst.a.reg != inst.dst)
          copyOf[inst.dst] = inst.a.reg;
        if (numberable)
          available[key] = Avail{inst.dst, versionOf(inst.dst)};
      }
    }
  }
  return stats;
}

OptStats optimize(Function& fn) {
  OptStats total;
  for (int round = 0; round < 8; ++round) {
    const OptStats f = foldConstants(fn);
    const OptStats v = localValueNumbering(fn);
    const OptStats d = eliminateDeadCode(fn);
    total.constantsFolded += f.constantsFolded;
    total.branchesFolded += f.branchesFolded;
    total.valuesNumbered += v.valuesNumbered;
    total.copiesPropagated += v.copiesPropagated;
    total.instsRemoved += d.instsRemoved;
    if (f.total() + v.total() + d.total() == 0) break;
  }
  // Branch folding may orphan blocks; drop them to keep the CFG verifiable.
  fn.removeUnreachableBlocks();
  return total;
}

OptStats optimize(Module& mod) {
  OptStats total;
  for (const auto& fn : mod.functions()) {
    const OptStats s = optimize(*fn);
    total.constantsFolded += s.constantsFolded;
    total.instsRemoved += s.instsRemoved;
    total.branchesFolded += s.branchesFolded;
  }
  return total;
}

} // namespace lev::ir
