#include "ir/interp.hpp"

#include "support/bits.hpp"

namespace lev::ir {

namespace {

std::uint64_t evalBinary(Op op, std::uint64_t a, std::uint64_t b) {
  const auto sa = static_cast<std::int64_t>(a);
  const auto sb = static_cast<std::int64_t>(b);
  switch (op) {
  case Op::Add: return a + b;
  case Op::Sub: return a - b;
  case Op::Mul: return a * b;
  case Op::DivS:
    if (sb == 0) return ~0ull;
    if (sa == INT64_MIN && sb == -1) return a;
    return static_cast<std::uint64_t>(sa / sb);
  case Op::DivU: return b == 0 ? ~0ull : a / b;
  case Op::RemS:
    if (sb == 0) return a;
    if (sa == INT64_MIN && sb == -1) return 0;
    return static_cast<std::uint64_t>(sa % sb);
  case Op::RemU: return b == 0 ? a : a % b;
  case Op::And: return a & b;
  case Op::Or: return a | b;
  case Op::Xor: return a ^ b;
  case Op::Shl: return a << (b & 63);
  case Op::ShrL: return a >> (b & 63);
  case Op::ShrA: return static_cast<std::uint64_t>(sa >> (b & 63));
  case Op::CmpEq: return a == b;
  case Op::CmpNe: return a != b;
  case Op::CmpLtS: return sa < sb;
  case Op::CmpLtU: return a < b;
  case Op::CmpGeS: return sa >= sb;
  case Op::CmpGeU: return a >= b;
  default:
    LEV_UNREACHABLE("not a binary op");
  }
}

} // namespace

Interpreter::Interpreter(const Module& mod, std::uint64_t dataBase)
    : mod_(mod) {
  std::uint64_t cursor = dataBase;
  for (const Global& g : mod.globals()) {
    cursor = alignUp(cursor, g.align == 0 ? 8 : g.align);
    globalAddr_[g.name] = cursor;
    for (std::size_t i = 0; i < g.init.size(); ++i)
      memory_[cursor + i] = g.init[i];
    cursor += g.size;
  }
}

std::uint64_t Interpreter::globalAddress(const std::string& name) const {
  auto it = globalAddr_.find(name);
  LEV_CHECK(it != globalAddr_.end(), "unknown global " + name);
  return it->second;
}

std::uint64_t Interpreter::readMemory(std::uint64_t addr, int size) const {
  std::uint64_t v = 0;
  for (int i = 0; i < size; ++i) {
    auto it = memory_.find(addr + static_cast<std::uint64_t>(i));
    const std::uint8_t byte = it == memory_.end() ? 0 : it->second;
    v |= static_cast<std::uint64_t>(byte) << (8 * i);
  }
  return v;
}

void Interpreter::writeMemory(std::uint64_t addr, std::uint64_t value,
                              int size) {
  for (int i = 0; i < size; ++i)
    memory_[addr + static_cast<std::uint64_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint64_t Interpreter::evalValue(
    const Value& v, const std::vector<std::uint64_t>& regs) const {
  if (v.isImm()) return static_cast<std::uint64_t>(v.imm);
  LEV_CHECK(v.isReg(), "evaluating empty value");
  return regs[static_cast<std::size_t>(v.reg)];
}

std::uint64_t Interpreter::call(const Function& fn,
                                const std::vector<std::uint64_t>& args,
                                int depth) {
  if (depth > 512) throw SimError("interpreter: call depth exceeded");
  std::vector<std::uint64_t> regs(static_cast<std::size_t>(fn.numRegs()), 0);
  for (int p = 0; p < fn.numParams(); ++p)
    regs[static_cast<std::size_t>(p)] = args[static_cast<std::size_t>(p)];

  int block = 0;
  while (true) {
    const BasicBlock& bb = fn.block(block);
    for (const Inst& inst : bb.insts) {
      if (halted_) return 0;
      if (++executed_ > budget_)
        throw SimError("interpreter: instruction budget exceeded");
      switch (inst.op) {
      case Op::Mov:
        regs[static_cast<std::size_t>(inst.dst)] = evalValue(inst.a, regs);
        break;
      case Op::Lea:
        regs[static_cast<std::size_t>(inst.dst)] =
            globalAddress(inst.callee) + static_cast<std::uint64_t>(inst.off);
        break;
      case Op::Load:
        regs[static_cast<std::size_t>(inst.dst)] = readMemory(
            evalValue(inst.a, regs) + static_cast<std::uint64_t>(inst.off),
            inst.size);
        break;
      case Op::Store:
        writeMemory(
            evalValue(inst.a, regs) + static_cast<std::uint64_t>(inst.off),
            evalValue(inst.b, regs), inst.size);
        break;
      case Op::Flush:
        // No caches at this level; only the register effect remains.
        regs[static_cast<std::size_t>(inst.dst)] = 0;
        break;
      case Op::Br:
        block = evalValue(inst.a, regs) != 0 ? inst.succ[0] : inst.succ[1];
        goto nextBlock;
      case Op::Jmp:
        block = inst.succ[0];
        goto nextBlock;
      case Op::Call: {
        const Function* callee = mod_.findFunction(inst.callee);
        LEV_CHECK(callee != nullptr, "unknown callee " + inst.callee);
        std::vector<std::uint64_t> argv;
        argv.reserve(inst.args.size());
        for (const Value& a : inst.args) argv.push_back(evalValue(a, regs));
        const std::uint64_t r = call(*callee, argv, depth + 1);
        if (inst.dst >= 0) regs[static_cast<std::size_t>(inst.dst)] = r;
        break;
      }
      case Op::Ret:
        return evalValue(inst.a, regs);
      case Op::Halt:
        halted_ = true;
        return 0;
      default:
        regs[static_cast<std::size_t>(inst.dst)] = evalBinary(
            inst.op, evalValue(inst.a, regs), evalValue(inst.b, regs));
        break;
      }
    }
    throw SimError("interpreter: fell off a block without terminator");
  nextBlock:;
  }
}

std::uint64_t Interpreter::run(std::uint64_t maxInsts) {
  const Function* main = mod_.findFunction("main");
  if (main == nullptr) throw SimError("interpreter: no main()");
  budget_ = maxInsts;
  halted_ = false;
  executed_ = 0;
  // main() normally ends in halt; a ret from main is also accepted (it is
  // what the backend's _start stub turns into a halt).
  call(*main, {}, 0);
  return executed_;
}

} // namespace lev::ir
