#include "ir/builder.hpp"

namespace lev::ir {

int IRBuilder::emit(Inst inst) {
  fn_.addInst(block_, std::move(inst));
  return 0;
}

int IRBuilder::binary(Op op, Value a, Value b) {
  Inst inst;
  inst.op = op;
  inst.dst = fn_.newReg();
  inst.a = a;
  inst.b = b;
  const int dst = inst.dst;
  emit(std::move(inst));
  return dst;
}

int IRBuilder::mov(Value a) {
  Inst inst;
  inst.op = Op::Mov;
  inst.dst = fn_.newReg();
  inst.a = a;
  const int dst = inst.dst;
  emit(std::move(inst));
  return dst;
}

void IRBuilder::assign(int dst, Value src) {
  Inst inst;
  inst.op = Op::Mov;
  inst.dst = dst;
  inst.a = src;
  emit(std::move(inst));
}

void IRBuilder::binaryInto(int dst, Op op, Value a, Value b) {
  Inst inst;
  inst.op = op;
  inst.dst = dst;
  inst.a = a;
  inst.b = b;
  emit(std::move(inst));
}

void IRBuilder::loadInto(int dst, Value base, std::int64_t off, int size) {
  Inst inst;
  inst.op = Op::Load;
  inst.dst = dst;
  inst.a = base;
  inst.off = off;
  inst.size = size;
  emit(std::move(inst));
}

int IRBuilder::lea(const std::string& global, std::int64_t off) {
  Inst inst;
  inst.op = Op::Lea;
  inst.dst = fn_.newReg();
  inst.callee = global;
  inst.off = off;
  const int dst = inst.dst;
  emit(std::move(inst));
  return dst;
}

int IRBuilder::load(Value base, std::int64_t off, int size) {
  Inst inst;
  inst.op = Op::Load;
  inst.dst = fn_.newReg();
  inst.a = base;
  inst.off = off;
  inst.size = size;
  const int dst = inst.dst;
  emit(std::move(inst));
  return dst;
}

void IRBuilder::store(Value base, Value data, std::int64_t off, int size) {
  Inst inst;
  inst.op = Op::Store;
  inst.a = base;
  inst.b = data;
  inst.off = off;
  inst.size = size;
  emit(std::move(inst));
}

int IRBuilder::flush(Value base, std::int64_t off) {
  Inst inst;
  inst.op = Op::Flush;
  inst.dst = fn_.newReg();
  inst.a = base;
  inst.off = off;
  const int dst = inst.dst;
  emit(std::move(inst));
  return dst;
}

void IRBuilder::br(Value cond, int thenBB, int elseBB) {
  Inst inst;
  inst.op = Op::Br;
  inst.a = cond;
  inst.succ[0] = thenBB;
  inst.succ[1] = elseBB;
  emit(std::move(inst));
}

void IRBuilder::jmp(int target) {
  Inst inst;
  inst.op = Op::Jmp;
  inst.succ[0] = target;
  emit(std::move(inst));
}

int IRBuilder::call(const std::string& callee, std::vector<Value> args) {
  Inst inst;
  inst.op = Op::Call;
  inst.dst = fn_.newReg();
  inst.callee = callee;
  inst.args = std::move(args);
  const int dst = inst.dst;
  emit(std::move(inst));
  return dst;
}

void IRBuilder::callVoid(const std::string& callee, std::vector<Value> args) {
  Inst inst;
  inst.op = Op::Call;
  inst.callee = callee;
  inst.args = std::move(args);
  emit(std::move(inst));
}

void IRBuilder::ret(Value v) {
  Inst inst;
  inst.op = Op::Ret;
  inst.a = v;
  emit(std::move(inst));
}

void IRBuilder::halt() {
  Inst inst;
  inst.op = Op::Halt;
  emit(std::move(inst));
}

} // namespace lev::ir
