// Classic scalar optimizations over the IR.
//
// The workload generators emit straightforward code; these passes give the
// backend the usual clean-up a production compiler would run before the
// Levioso analysis (the paper's pass runs inside LLVM's pipeline after
// -O2). All passes preserve semantics and never remove loads/stores or
// control flow with side effects.
#pragma once

#include "ir/ir.hpp"

namespace lev::ir {

/// Statistics returned by the pass pipeline.
struct OptStats {
  int constantsFolded = 0;
  int instsRemoved = 0;   ///< dead pure instructions eliminated
  int branchesFolded = 0; ///< constant-condition br -> jmp
  int valuesNumbered = 0; ///< redundant computations reused (local CSE)
  int copiesPropagated = 0;
  std::int64_t total() const {
    return constantsFolded + instsRemoved + branchesFolded + valuesNumbered +
           copiesPropagated;
  }
};

/// Fold instructions whose operands are constant: binary ALU ops and movs
/// of immediates become `mov imm`; `br` on a constant condition becomes
/// `jmp`. Local (per-block) constant propagation feeds the folder.
OptStats foldConstants(Function& fn);

/// Remove pure instructions whose results are never used (dead code).
/// Loads are treated as pure reads and may be removed when unused; stores,
/// calls, flushes and terminators are always kept.
OptStats eliminateDeadCode(Function& fn);

/// Local value numbering: within each block, replace recomputations of an
/// already-available pure expression with a copy, and propagate copies
/// into operands. Loads participate until the next store/call/flush
/// (memory version tracking); entries die when their source registers are
/// redefined.
OptStats localValueNumbering(Function& fn);

/// Run the full pipeline to a fixpoint (bounded): fold, DCE, repeat.
/// Renumbers the function when done.
OptStats optimize(Function& fn);

/// Optimize every function of a module.
OptStats optimize(Module& mod);

} // namespace lev::ir
