// Fluent construction API for the IR, used by the workload generators,
// the tests, and the examples.
#pragma once

#include "ir/ir.hpp"

namespace lev::ir {

/// Builds instructions into a function, one block at a time.
///
///   IRBuilder b(fn);
///   b.setBlock(entry);
///   int sum = b.add(b.reg(x), b.imm(1));
///   b.br(b.reg(cond), thenBB, elseBB);
class IRBuilder {
public:
  explicit IRBuilder(Function& fn) : fn_(fn) {}

  void setBlock(int blockId) { block_ = blockId; }
  int currentBlock() const { return block_; }

  static Value reg(int r) { return Value::makeReg(r); }
  static Value imm(std::int64_t v) { return Value::makeImm(v); }

  // --- arithmetic -----------------------------------------------------
  int binary(Op op, Value a, Value b);
  int add(Value a, Value b) { return binary(Op::Add, a, b); }
  int sub(Value a, Value b) { return binary(Op::Sub, a, b); }
  int mul(Value a, Value b) { return binary(Op::Mul, a, b); }
  int divs(Value a, Value b) { return binary(Op::DivS, a, b); }
  int divu(Value a, Value b) { return binary(Op::DivU, a, b); }
  int rems(Value a, Value b) { return binary(Op::RemS, a, b); }
  int remu(Value a, Value b) { return binary(Op::RemU, a, b); }
  int and_(Value a, Value b) { return binary(Op::And, a, b); }
  int or_(Value a, Value b) { return binary(Op::Or, a, b); }
  int xor_(Value a, Value b) { return binary(Op::Xor, a, b); }
  int shl(Value a, Value b) { return binary(Op::Shl, a, b); }
  int shrl(Value a, Value b) { return binary(Op::ShrL, a, b); }
  int shra(Value a, Value b) { return binary(Op::ShrA, a, b); }
  int cmpEq(Value a, Value b) { return binary(Op::CmpEq, a, b); }
  int cmpNe(Value a, Value b) { return binary(Op::CmpNe, a, b); }
  int cmpLtS(Value a, Value b) { return binary(Op::CmpLtS, a, b); }
  int cmpLtU(Value a, Value b) { return binary(Op::CmpLtU, a, b); }
  int cmpGeS(Value a, Value b) { return binary(Op::CmpGeS, a, b); }
  int cmpGeU(Value a, Value b) { return binary(Op::CmpGeU, a, b); }

  int mov(Value a);
  /// dst = &global + off
  int lea(const std::string& global, std::int64_t off = 0);

  /// Re-assign an existing register (loop-carried variables — the IR is not
  /// SSA, so `i = add i, 1` is expressed this way).
  void assign(int dst, Value src);
  /// dst = a <op> b into an existing register.
  void binaryInto(int dst, Op op, Value a, Value b);
  /// dst = zero-extended mem[base + off] into an existing register.
  void loadInto(int dst, Value base, std::int64_t off = 0, int size = 8);

  // --- memory ---------------------------------------------------------
  /// dst = zero-extended mem[base + off]
  int load(Value base, std::int64_t off = 0, int size = 8);
  void store(Value base, Value data, std::int64_t off = 0, int size = 8);
  /// Flush the cache line of base + off; returns a register holding 0 so
  /// later addresses can be made dependent on the flush.
  int flush(Value base, std::int64_t off = 0);

  // --- control flow ---------------------------------------------------
  void br(Value cond, int thenBB, int elseBB);
  void jmp(int target);
  /// Call with a result register.
  int call(const std::string& callee, std::vector<Value> args);
  /// Call ignoring the result.
  void callVoid(const std::string& callee, std::vector<Value> args);
  void ret(Value v = Value::makeImm(0));
  void halt();

private:
  int emit(Inst inst);
  Function& fn_;
  int block_ = 0;
};

} // namespace lev::ir
