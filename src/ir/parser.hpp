// Textual IR parser; accepts the printer's output (round-trip guaranteed,
// tested in tests/ir_roundtrip_test.cpp) plus comments starting with '#'.
#pragma once

#include <string_view>

#include "ir/ir.hpp"

namespace lev::ir {

/// Parse a module from text. Throws lev::ParseError on malformed input.
Module parseModule(std::string_view text);

} // namespace lev::ir
