// Direct IR interpreter — the third execution engine.
//
// Executes an ir::Module without lowering it, using its own global layout.
// Together with uarch::FuncSim (machine-level golden model) and
// uarch::O3Core (timing model) this enables three-way differential
// testing: IR semantics vs backend lowering vs pipeline, which the fuzzer
// (tests/fuzz_differential_test.cpp) exercises on random programs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace lev::ir {

/// Interprets a verified module starting at main(). Memory uses the same
/// deterministic layout rule as the backend (globals packed from
/// `dataBase` with their alignment), so addresses computed via lea match
/// the compiled program's addresses.
class Interpreter {
public:
  explicit Interpreter(const Module& mod, std::uint64_t dataBase = 0x100000);

  /// Run main() to halt. Returns the number of IR instructions executed.
  /// Throws lev::SimError on runaway execution or a missing main.
  std::uint64_t run(std::uint64_t maxInsts = 100'000'000);

  /// Byte-addressed memory access (after or before run).
  std::uint64_t readMemory(std::uint64_t addr, int size) const;
  void writeMemory(std::uint64_t addr, std::uint64_t value, int size);

  /// Address assigned to a global.
  std::uint64_t globalAddress(const std::string& name) const;

private:
  std::uint64_t evalValue(const Value& v,
                          const std::vector<std::uint64_t>& regs) const;
  /// Execute one function; returns its result value.
  std::uint64_t call(const Function& fn,
                     const std::vector<std::uint64_t>& args, int depth);

  const Module& mod_;
  std::map<std::string, std::uint64_t> globalAddr_;
  std::map<std::uint64_t, std::uint8_t> memory_;
  std::uint64_t budget_ = 0;
  bool halted_ = false;
  std::uint64_t executed_ = 0;
};

} // namespace lev::ir
