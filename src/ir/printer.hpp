// Textual IR emission; round-trips with parser.hpp.
#pragma once

#include <ostream>
#include <string>

#include "ir/ir.hpp"

namespace lev::ir {

/// Print one instruction (no trailing newline).
void printInst(std::ostream& os, const Function& fn, const Inst& inst);

/// Print a whole function.
void printFunction(std::ostream& os, const Function& fn);

/// Print a whole module (functions then globals).
void printModule(std::ostream& os, const Module& mod);

/// Convenience: module as a string.
std::string toString(const Module& mod);

} // namespace lev::ir
