// Structural IR validation. Run before analyses and before lowering.
#pragma once

#include "ir/ir.hpp"

namespace lev::ir {

/// Check structural invariants of a module; throws lev::VerifyError with a
/// diagnostic on the first violation:
///  - every block ends with exactly one terminator and has no interior ones,
///  - branch/jump successors are valid block ids,
///  - registers referenced are within the function's register count,
///  - loads/stores have legal sizes and destinations where required,
///  - callees and lea targets resolve within the module,
///  - every block is reachable from the entry.
void verify(const Module& mod);

} // namespace lev::ir
