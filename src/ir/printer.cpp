#include "ir/printer.hpp"

#include <sstream>

namespace lev::ir {

namespace {

void printValue(std::ostream& os, const Value& v) {
  if (v.isReg())
    os << "%v" << v.reg;
  else if (v.isImm())
    os << v.imm;
  else
    os << "<none>";
}

} // namespace

void printInst(std::ostream& os, const Function& fn, const Inst& inst) {
  auto label = [&](int b) -> const std::string& { return fn.block(b).label; };
  switch (inst.op) {
  case Op::Load:
    os << "%v" << inst.dst << " = load." << inst.size << " ";
    printValue(os, inst.a);
    os << " + " << inst.off;
    return;
  case Op::Store:
    os << "store." << inst.size << " ";
    printValue(os, inst.a);
    os << " + " << inst.off << ", ";
    printValue(os, inst.b);
    return;
  case Op::Lea:
    os << "%v" << inst.dst << " = lea @" << inst.callee << " + " << inst.off;
    return;
  case Op::Flush:
    os << "%v" << inst.dst << " = flush ";
    printValue(os, inst.a);
    os << " + " << inst.off;
    return;
  case Op::Br:
    os << "br ";
    printValue(os, inst.a);
    os << ", " << label(inst.succ[0]) << ", " << label(inst.succ[1]);
    return;
  case Op::Jmp:
    os << "jmp " << label(inst.succ[0]);
    return;
  case Op::Call:
    if (inst.dst >= 0) os << "%v" << inst.dst << " = ";
    os << "call @" << inst.callee << "(";
    for (std::size_t i = 0; i < inst.args.size(); ++i) {
      if (i) os << ", ";
      printValue(os, inst.args[i]);
    }
    os << ")";
    return;
  case Op::Ret:
    os << "ret ";
    printValue(os, inst.a);
    return;
  case Op::Halt:
    os << "halt";
    return;
  case Op::Mov:
    os << "%v" << inst.dst << " = mov ";
    printValue(os, inst.a);
    return;
  default:
    os << "%v" << inst.dst << " = " << opName(inst.op) << " ";
    printValue(os, inst.a);
    os << ", ";
    printValue(os, inst.b);
    return;
  }
}

void printFunction(std::ostream& os, const Function& fn) {
  os << "func @" << fn.name() << "(";
  for (int i = 0; i < fn.numParams(); ++i) {
    if (i) os << ", ";
    os << "%v" << i;
  }
  os << ") {\n";
  for (int b = 0; b < fn.numBlocks(); ++b) {
    const BasicBlock& bb = fn.block(b);
    os << bb.label << ":\n";
    for (const Inst& inst : bb.insts) {
      os << "  ";
      printInst(os, fn, inst);
      os << "\n";
    }
  }
  os << "}\n";
}

void printModule(std::ostream& os, const Module& mod) {
  bool first = true;
  for (const auto& fn : mod.functions()) {
    if (!first) os << "\n";
    first = false;
    printFunction(os, *fn);
  }
  for (const Global& g : mod.globals()) {
    os << "global @" << g.name << " size " << g.size << " align " << g.align;
    // Initial contents as lowercase hex, trailing zero bytes stripped (the
    // tail of `init` is implicitly zero). Keeps randomly-initialized fuzz
    // programs self-contained when they round-trip through text.
    std::size_t used = g.init.size();
    while (used > 0 && g.init[used - 1] == 0) --used;
    if (used > 0) {
      static const char* kHex = "0123456789abcdef";
      os << " init ";
      for (std::size_t i = 0; i < used; ++i) {
        os << kHex[g.init[i] >> 4] << kHex[g.init[i] & 0xf];
      }
    }
    os << "\n";
  }
}

std::string toString(const Module& mod) {
  std::ostringstream ss;
  printModule(ss, mod);
  return ss.str();
}

} // namespace lev::ir
