#include "ir/ir.hpp"

#include <algorithm>

namespace lev::ir {

bool isTerminator(Op op) {
  switch (op) {
  case Op::Br:
  case Op::Jmp:
  case Op::Ret:
  case Op::Halt:
    return true;
  default:
    return false;
  }
}

bool producesValue(Op op) {
  switch (op) {
  case Op::Store:
  case Op::Br:
  case Op::Jmp:
  case Op::Ret:
  case Op::Halt:
    return false;
  default:
    return true; // Call only when dst >= 0; callers must check dst.
  }
}

const char* opName(Op op) {
  switch (op) {
  case Op::Add: return "add";
  case Op::Sub: return "sub";
  case Op::Mul: return "mul";
  case Op::DivS: return "divs";
  case Op::DivU: return "divu";
  case Op::RemS: return "rems";
  case Op::RemU: return "remu";
  case Op::And: return "and";
  case Op::Or: return "or";
  case Op::Xor: return "xor";
  case Op::Shl: return "shl";
  case Op::ShrL: return "shrl";
  case Op::ShrA: return "shra";
  case Op::CmpEq: return "cmpeq";
  case Op::CmpNe: return "cmpne";
  case Op::CmpLtS: return "cmplts";
  case Op::CmpLtU: return "cmpltu";
  case Op::CmpGeS: return "cmpges";
  case Op::CmpGeU: return "cmpgeu";
  case Op::Mov: return "mov";
  case Op::Lea: return "lea";
  case Op::Load: return "load";
  case Op::Store: return "store";
  case Op::Flush: return "flush";
  case Op::Br: return "br";
  case Op::Jmp: return "jmp";
  case Op::Call: return "call";
  case Op::Ret: return "ret";
  case Op::Halt: return "halt";
  }
  LEV_UNREACHABLE("bad opcode");
}

void Inst::uses(std::vector<int>& out) const {
  out.clear();
  if (a.isReg()) out.push_back(a.reg);
  if (b.isReg()) out.push_back(b.reg);
  for (const Value& v : args)
    if (v.isReg()) out.push_back(v.reg);
}

Function::Function(std::string name, int numParams)
    : name_(std::move(name)), numParams_(numParams), numRegs_(numParams) {}

int Function::createBlock(std::string label) {
  const int id = static_cast<int>(blocks_.size());
  BasicBlock bb;
  bb.id = id;
  bb.label = label.empty() ? ("bb" + std::to_string(id)) : std::move(label);
  blocks_.push_back(std::move(bb));
  return id;
}

int Function::addInst(int blockId, Inst inst) {
  BasicBlock& bb = block(blockId);
  LEV_CHECK(!bb.hasTerminator(), "appending after terminator in " + bb.label);
  inst.id = nextInstId_++;
  inst.block = blockId;
  bb.insts.push_back(std::move(inst));
  return bb.insts.back().id;
}

std::vector<int> Function::successors(int blockId) const {
  const BasicBlock& bb = block(blockId);
  std::vector<int> out;
  if (!bb.hasTerminator()) return out;
  const Inst& t = bb.insts.back();
  for (int s : t.succ)
    if (s >= 0) out.push_back(s);
  return out;
}

std::vector<std::vector<int>> Function::predecessors() const {
  std::vector<std::vector<int>> preds(blocks_.size());
  for (const BasicBlock& bb : blocks_)
    for (int s : successors(bb.id))
      preds[static_cast<std::size_t>(s)].push_back(bb.id);
  return preds;
}

void Function::renumber() {
  int next = 0;
  for (BasicBlock& bb : blocks_)
    for (Inst& inst : bb.insts) {
      inst.id = next++;
      inst.block = bb.id;
    }
  nextInstId_ = next;
}

void Function::removeUnreachableBlocks() {
  std::vector<bool> reachable(blocks_.size(), false);
  std::vector<int> work = {0};
  reachable[0] = true;
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    for (int s : successors(b))
      if (!reachable[static_cast<std::size_t>(s)]) {
        reachable[static_cast<std::size_t>(s)] = true;
        work.push_back(s);
      }
  }

  std::vector<int> remap(blocks_.size(), -1);
  std::vector<BasicBlock> kept;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (!reachable[i]) continue;
    remap[i] = static_cast<int>(kept.size());
    kept.push_back(std::move(blocks_[i]));
  }
  for (BasicBlock& bb : kept) {
    bb.id = remap[static_cast<std::size_t>(bb.id)];
    for (Inst& inst : bb.insts)
      for (int& s : inst.succ)
        if (s >= 0) s = remap[static_cast<std::size_t>(s)];
  }
  blocks_ = std::move(kept);
  renumber();
}

Function& Module::addFunction(std::string name, int numParams) {
  LEV_CHECK(findFunction(name) == nullptr, "duplicate function " + name);
  funcs_.push_back(std::make_unique<Function>(std::move(name), numParams));
  return *funcs_.back();
}

Function* Module::findFunction(const std::string& name) {
  for (auto& f : funcs_)
    if (f->name() == name) return f.get();
  return nullptr;
}

const Function* Module::findFunction(const std::string& name) const {
  for (const auto& f : funcs_)
    if (f->name() == name) return f.get();
  return nullptr;
}

Global& Module::addGlobal(std::string name, std::uint64_t size,
                          std::uint64_t align) {
  LEV_CHECK(findGlobal(name) == nullptr, "duplicate global " + name);
  LEV_CHECK(size > 0, "zero-sized global " + name);
  Global g;
  g.name = std::move(name);
  g.size = size;
  g.align = align;
  globals_.push_back(std::move(g));
  return globals_.back();
}

Global* Module::findGlobal(const std::string& name) {
  for (auto& g : globals_)
    if (g.name == name) return &g;
  return nullptr;
}

const Global* Module::findGlobal(const std::string& name) const {
  for (const auto& g : globals_)
    if (g.name == name) return &g;
  return nullptr;
}

} // namespace lev::ir
