// levioso-sim: run a program on the out-of-order core under a chosen
// secure-speculation policy and dump the statistics.
//
//   levioso-sim --kernel mcf_chase --policy levioso
//   levioso-sim file.asm --policy spt          (assembly with !deps hints)
//   levioso-sim file.ir --policy dom --budget 2
//   options: --rob N --width N --dram N --golden --dump-stats
#include <fstream>
#include <iostream>
#include <sstream>

#include "backend/compiler.hpp"
#include "ir/parser.hpp"
#include "isa/asmparser.hpp"
#include "sim/simulation.hpp"
#include "support/strings.hpp"
#include "uarch/funcsim.hpp"
#include "workloads/kernels.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: levioso-sim (<file.ir>|<file.asm>|--kernel <name>) "
         "[--policy P] [--budget K] [--rob N] [--width N] [--dram N] "
         "[--golden] [--dump-stats]\n";
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  std::string file, kernel, policy = "unsafe";
  int budget = 4, rob = 0, width = 0, dram = 0;
  bool golden = false, dumpStats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kernel" && i + 1 < argc)
      kernel = argv[++i];
    else if (a == "--policy" && i + 1 < argc)
      policy = argv[++i];
    else if (a == "--budget" && i + 1 < argc)
      budget = std::atoi(argv[++i]);
    else if (a == "--rob" && i + 1 < argc)
      rob = std::atoi(argv[++i]);
    else if (a == "--width" && i + 1 < argc)
      width = std::atoi(argv[++i]);
    else if (a == "--dram" && i + 1 < argc)
      dram = std::atoi(argv[++i]);
    else if (a == "--golden")
      golden = true;
    else if (a == "--dump-stats")
      dumpStats = true;
    else if (!a.empty() && a[0] != '-')
      file = a;
    else
      usage();
  }
  if (file.empty() == kernel.empty()) usage();

  try {
    const bool isIrFile =
        file.size() > 3 && file.compare(file.size() - 3, 3, ".ir") == 0;
    isa::Program prog;
    if (!kernel.empty() || isIrFile) {
      ir::Module mod = [&] {
        if (!kernel.empty()) return workloads::buildKernel(kernel);
        std::ifstream in(file);
        if (!in) throw Error("cannot open " + file);
        std::stringstream ss;
        ss << in.rdbuf();
        return ir::parseModule(ss.str());
      }();
      backend::CompileOptions opts;
      opts.annotationBudget = budget;
      prog = backend::compile(mod, opts).program;
    } else {
      std::ifstream in(file);
      if (!in) throw Error("cannot open " + file);
      std::stringstream ss;
      ss << in.rdbuf();
      prog = isa::assemble(ss.str());
    }

    if (golden) {
      uarch::FuncSim sim(prog);
      const std::uint64_t n = sim.run();
      std::cout << "golden model: " << n << " instructions\n";
      return 0;
    }

    uarch::CoreConfig cfg;
    if (rob > 0) cfg.robSize = rob;
    if (width > 0)
      cfg.fetchWidth = cfg.renameWidth = cfg.issueWidth = cfg.commitWidth =
          width;
    if (dram > 0) cfg.mem.memLatency = dram;

    sim::Simulation s(prog, cfg, policy);
    if (s.run(10'000'000'000ull) != uarch::RunExit::Halted)
      throw SimError("cycle limit reached");
    std::cout << "policy " << policy << ": " << s.core().cycle()
              << " cycles, " << s.core().committedInsts()
              << " instructions, IPC "
              << fmtF(static_cast<double>(s.core().committedInsts()) /
                          static_cast<double>(s.core().cycle()),
                      3)
              << "\n";
    if (dumpStats) s.stats().print(std::cout, "  ");
    return 0;
  } catch (const Error& e) {
    std::cerr << "levioso-sim: " << e.what() << "\n";
    return 1;
  }
}
