// levioso-sim: run a program on the out-of-order core under a chosen
// secure-speculation policy and dump the statistics.
//
//   levioso-sim --kernel mcf_chase --policy levioso
//   levioso-sim file.asm --policy spt          (assembly with !deps hints)
//   levioso-sim file.ir --policy dom --budget 2
//   levioso-sim --kernel mcf_chase --policy unsafe,spt,levioso --jobs 4
//   levioso-sim --kernel mcf_chase --sample 100000:2000
//   options: --rob N --width N --dram N --jobs N --golden --dump-stats
//
// A comma-separated --policy list on a --kernel run fans the policies out
// as one concurrent sweep on the runner subsystem. --sample N:M switches to
// checkpointed sampled simulation (docs/PERF.md): cycle counts become
// estimates, are flagged as such, and are never cached.
#include <fstream>
#include <iostream>
#include <sstream>

#include "backend/compiler.hpp"
#include "ir/parser.hpp"
#include "isa/asmparser.hpp"
#include "runner/sweep.hpp"
#include "sim/sampling.hpp"
#include "sim/simulation.hpp"
#include "support/cliparse.hpp"
#include "support/strings.hpp"
#include "uarch/funcsim.hpp"
#include "workloads/kernels.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: levioso-sim (<file.ir>|<file.asm>|--kernel <name>) "
         "[--policy P[,Q,..]] [--budget K] [--rob N] [--width N] [--dram N] "
         "[--jobs N] [--sample N:M] [--golden] [--dump-stats]\n";
  std::exit(2);
}

void printSummary(const std::string& policy, std::uint64_t cycles,
                  std::uint64_t insts) {
  std::cout << "policy " << policy << ": " << cycles << " cycles, " << insts
            << " instructions, IPC "
            << fmtF(static_cast<double>(insts) / static_cast<double>(cycles),
                    3)
            << "\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string file, kernel;
  std::vector<std::string> policies = {"unsafe"};
  int budget = 4, rob = 0, width = 0, dram = 0, jobs = 0;
  bool golden = false, dumpStats = false;
  sim::SampleOptions sample;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kernel" && i + 1 < argc)
      kernel = argv[++i];
    else if (a == "--policy" && i + 1 < argc) {
      policies.clear();
      for (auto part : split(argv[++i], ','))
        policies.emplace_back(trim(part));
      if (policies.empty()) usage();
    } else if (a == "--budget" && i + 1 < argc)
      budget = requireIntArg("levioso-sim", "--budget", argv[++i], 0, 1024);
    else if (a == "--rob" && i + 1 < argc)
      rob = requireIntArg("levioso-sim", "--rob", argv[++i], 0, 1 << 20);
    else if (a == "--width" && i + 1 < argc)
      width = requireIntArg("levioso-sim", "--width", argv[++i], 0, 64);
    else if (a == "--dram" && i + 1 < argc)
      dram = requireIntArg("levioso-sim", "--dram", argv[++i], 0, 1 << 20);
    else if (a == "--jobs" && i + 1 < argc)
      jobs = requireIntArg("levioso-sim", "--jobs", argv[++i], 0, 4096);
    else if (a == "--sample" && i + 1 < argc) {
      try {
        sample = sim::parseSampleSpec(argv[++i]);
      } catch (const Error& e) {
        std::cerr << "levioso-sim: " << e.what() << "\n";
        return 2;
      }
    } else if (a == "--golden")
      golden = true;
    else if (a == "--dump-stats")
      dumpStats = true;
    else if (!a.empty() && a[0] != '-')
      file = a;
    else
      usage();
  }
  if (file.empty() == kernel.empty()) usage();
  if (policies.size() > 1 && kernel.empty()) {
    std::cerr << "levioso-sim: a policy sweep needs --kernel\n";
    return 2;
  }
  const std::string policy = policies.front();

  try {
    if (policies.size() > 1) {
      // Concurrent policy sweep over one kernel via the runner.
      runner::Sweep::Options opts;
      opts.jobs = jobs;
      runner::Sweep sweep(opts);
      for (const std::string& p : policies) {
        runner::JobSpec spec;
        spec.kernel = kernel;
        spec.policy = p;
        spec.budget = budget;
        if (rob > 0) spec.cfg.robSize = rob;
        if (width > 0)
          spec.cfg.fetchWidth = spec.cfg.renameWidth = spec.cfg.issueWidth =
              spec.cfg.commitWidth = width;
        if (dram > 0) spec.cfg.mem.memLatency = dram;
        spec.maxCycles = 10'000'000'000ull;
        spec.sampleEveryInsts = sample.periodInsts;
        spec.sampleWindowInsts = sample.windowInsts;
        sweep.add(spec);
      }
      const std::vector<runner::RunRecord>& records = sweep.run();
      for (std::size_t i = 0; i < records.size(); ++i) {
        printSummary(policies[i], records[i].summary.cycles,
                     records[i].summary.insts);
        if (records[i].sampled)
          std::cout << "  (sampled estimate; --sample " << sample.periodInsts
                    << ":" << sample.windowInsts << ")\n";
        if (dumpStats)
          for (const auto& [name, value] : records[i].stats)
            std::cout << "  " << name << " = " << value << "\n";
      }
      return 0;
    }

    const bool isIrFile =
        file.size() > 3 && file.compare(file.size() - 3, 3, ".ir") == 0;
    isa::Program prog;
    if (!kernel.empty() || isIrFile) {
      ir::Module mod = [&] {
        if (!kernel.empty()) return workloads::buildKernel(kernel);
        std::ifstream in(file);
        if (!in) throw Error("cannot open " + file);
        std::stringstream ss;
        ss << in.rdbuf();
        return ir::parseModule(ss.str());
      }();
      backend::CompileOptions opts;
      opts.annotationBudget = budget;
      prog = backend::compile(mod, opts).program;
    } else {
      std::ifstream in(file);
      if (!in) throw Error("cannot open " + file);
      std::stringstream ss;
      ss << in.rdbuf();
      prog = isa::assemble(ss.str());
    }

    if (golden) {
      uarch::FuncSim sim(prog);
      const std::uint64_t n = sim.run();
      std::cout << "golden model: " << n << " instructions\n";
      return 0;
    }

    uarch::CoreConfig cfg;
    if (rob > 0) cfg.robSize = rob;
    if (width > 0)
      cfg.fetchWidth = cfg.renameWidth = cfg.issueWidth = cfg.commitWidth =
          width;
    if (dram > 0) cfg.mem.memLatency = dram;

    if (sample.periodInsts > 0) {
      const uarch::PredecodedProgram pd(prog);
      const sim::SampleResult r =
          sim::runSampled(pd, cfg, policy, sample, 10'000'000'000ull);
      printSummary(policy, r.estimatedCycles, r.totalInsts);
      std::cout << "  (" << (r.exact ? "exact: windows covered every "
                                       "instruction"
                                     : "sampled estimate")
                << "; " << r.windows << " windows, " << r.sampledInsts
                << " detailed insts)\n";
      if (dumpStats) r.stats.print(std::cout, "  ");
      return 0;
    }

    sim::Simulation s(prog, cfg, policy);
    if (s.run(10'000'000'000ull) != uarch::RunExit::Halted)
      throw SimError("cycle limit reached");
    printSummary(policy, s.core().cycle(), s.core().committedInsts());
    if (dumpStats) s.stats().print(std::cout, "  ");
    return 0;
  } catch (const Error& e) {
    std::cerr << "levioso-sim: " << e.what() << "\n";
    return 1;
  }
}
