// levioso-fuzz: the security fuzzing oracle driver (docs/FUZZING.md).
//
// Generates seeded random programs with a secret-labelled memory region,
// runs each under the requested policies with the invariant oracle
// attached (src/fuzz/oracle.hpp), and reports every invariant violation
// and architectural divergence. Failing seeds can be delta-debugged into
// minimal self-contained regression kernels (--minimize --out DIR), and
// committed kernels re-checked with --replay.
//
// Exit status: 0 = all runs clean, 1 = violations/divergences/failures
// found, 2 = usage error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <vector>

#include "fuzz/minimize.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/progen.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "runner/manifest.hpp"
#include "runner/threadpool.hpp"
#include "support/cliparse.hpp"
#include "support/strings.hpp"

namespace {

using namespace lev;
namespace fs = std::filesystem;

[[noreturn]] void usage() {
  std::cerr
      << "usage: levioso-fuzz [options]\n"
         "  --seeds N          seeds to fuzz (default 50)\n"
         "  --seed-base K      first seed value (default 0)\n"
         "  --policies a,b,c   policies to check (default: all seven)\n"
         "  --secret-pct N     weight of secret-touching shapes, percent\n"
         "                     (default 35; 0 recovers plain differential)\n"
         "  --weaken POLICY    planted-violation self-test: flip POLICY's\n"
         "                     delay decisions to permits\n"
         "  --weaken-every N   flip every Nth delay only (default 1)\n"
         "  --minimize         delta-debug failing seeds into kernels\n"
         "  --out DIR          directory for minimized kernels (default\n"
         "                     fuzz-out)\n"
         "  --replay PATH      re-check a committed .ir kernel (or every\n"
         "                     *.ir in a directory) instead of fuzzing\n"
         "  --jobs N           worker threads (default: all cores)\n"
         "  --manifest PATH    write a run manifest (fuzz section)\n"
         "  --fail-fast        stop scheduling after the first failure\n";
  std::exit(2);
}

/// One seed's (or replayed file's) verdict, reduced for reporting.
struct SeedVerdict {
  std::string label;          ///< "seed 17" or a file path
  std::uint64_t seed = 0;
  bool replay = false;
  std::string text;           ///< program text (filled for failures)
  std::size_t violations = 0;
  std::size_t divergences = 0;
  bool simFailed = false;
  std::string firstDetail;    ///< representative violation line
  fuzz::FailureSignature signature;
  bool failing() const { return violations > 0 || divergences > 0 || simFailed; }
};

std::string describeViolation(const fuzz::Violation& v) {
  std::ostringstream ss;
  ss << v.policy << ": " << fuzz::violationKindName(v.kind) << " seq=" << v.seq
     << " pc=0x" << std::hex << v.pc << std::dec << " cycle=" << v.cycle;
  if (v.blockingBranch != 0) ss << " blockingBranch=" << v.blockingBranch;
  ss << " (" << v.detail << ")";
  return ss.str();
}

SeedVerdict summarize(const fuzz::CheckResult& result) {
  SeedVerdict v;
  for (const auto& r : result.runs) {
    v.violations += r.violations.size();
    if (r.divergent) ++v.divergences;
    if (v.firstDetail.empty() && !r.violations.empty())
      v.firstDetail = describeViolation(r.violations.front());
    if (v.firstDetail.empty() && r.divergent)
      v.firstDetail = r.policy + ": architectural state diverges from the "
                                 "IR-interpreter reference";
  }
  v.simFailed = result.simFailed;
  if (v.firstDetail.empty() && result.simFailed) v.firstDetail = result.simError;
  v.signature = fuzz::signatureOf(result);
  return v;
}

} // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 50, seedBase = 0;
  std::vector<std::string> policies;
  int secretPct = 35;
  std::string weakenPolicy;
  int weakenEveryN = 1;
  bool minimize = false;
  std::string outDir = "fuzz-out";
  std::vector<std::string> replayPaths;
  int jobs = 0;
  std::string manifestPath;
  bool failFast = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--seeds")
      seeds = static_cast<std::uint64_t>(
          requireInt("levioso-fuzz", "--seeds", next(), 1, 1'000'000));
    else if (a == "--seed-base")
      seedBase = static_cast<std::uint64_t>(requireInt(
          "levioso-fuzz", "--seed-base", next(), 0, 1'000'000'000));
    else if (a == "--policies") {
      policies.clear();
      for (auto part : split(next(), ',')) policies.emplace_back(trim(part));
      if (policies.empty()) usage();
    } else if (a == "--secret-pct")
      secretPct = requireIntArg("levioso-fuzz", "--secret-pct", next(), 0, 100);
    else if (a == "--weaken")
      weakenPolicy = next();
    else if (a == "--weaken-every")
      weakenEveryN =
          requireIntArg("levioso-fuzz", "--weaken-every", next(), 1, 1'000'000);
    else if (a == "--minimize")
      minimize = true;
    else if (a == "--out")
      outDir = next();
    else if (a == "--replay")
      replayPaths.push_back(next());
    else if (a == "--jobs")
      jobs = requireIntArg("levioso-fuzz", "--jobs", next(), 0, 4096);
    else if (a == "--manifest")
      manifestPath = next();
    else if (a == "--fail-fast")
      failFast = true;
    else
      usage();
  }

  fuzz::CheckOptions checkOpts;
  checkOpts.policies = policies;
  checkOpts.weakenPolicy = weakenPolicy;
  checkOpts.weakenEveryN = weakenEveryN;

  // Work items: generated seeds, or replayed kernel files.
  struct WorkItem {
    std::uint64_t seed = 0;
    std::string path; ///< non-empty = replay this file
  };
  std::vector<WorkItem> items;
  if (replayPaths.empty()) {
    for (std::uint64_t i = 0; i < seeds; ++i)
      items.push_back({seedBase + i, ""});
  } else {
    for (const std::string& p : replayPaths) {
      std::error_code ec;
      if (fs::is_directory(p, ec)) {
        std::vector<std::string> found;
        for (const auto& e : fs::directory_iterator(p, ec))
          if (e.path().extension() == ".ir") found.push_back(e.path().string());
        std::sort(found.begin(), found.end());
        for (auto& f : found) items.push_back({0, std::move(f)});
      } else {
        items.push_back({0, p});
      }
    }
    if (items.empty()) {
      std::cerr << "levioso-fuzz: no .ir kernels under the --replay paths\n";
      return 2;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const fuzz::GenOptions genBase{0, 3, static_cast<double>(secretPct) / 100.0};

  auto checkItem = [&](const WorkItem& item) -> fuzz::CheckResult {
    if (!item.path.empty()) {
      std::ifstream in(item.path);
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string text = ss.str();
      return fuzz::checkProgram([&text] { return ir::parseModule(text); },
                                checkOpts);
    }
    fuzz::GenOptions gen = genBase;
    gen.seed = item.seed;
    return fuzz::checkProgram(
        [gen] { return fuzz::ProgramGen(gen).generate(); }, checkOpts);
  };

  runner::ThreadPool pool(jobs);
  std::vector<SeedVerdict> verdicts(items.size());
  std::atomic<bool> stop{false};
  std::vector<std::future<void>> futures;
  futures.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    futures.push_back(pool.submit([&, i] {
      if (stop.load(std::memory_order_relaxed)) return;
      SeedVerdict v;
      v.seed = items[i].seed;
      v.replay = !items[i].path.empty();
      v.label = v.replay ? items[i].path
                         : "seed " + std::to_string(items[i].seed);
      try {
        const fuzz::CheckResult result = checkItem(items[i]);
        const SeedVerdict sum = summarize(result);
        v.violations = sum.violations;
        v.divergences = sum.divergences;
        v.simFailed = sum.simFailed;
        v.firstDetail = sum.firstDetail;
        v.signature = sum.signature;
        if (v.failing()) {
          // Capture the program text for reporting/minimization. Replays
          // already have it on disk; seeds re-print deterministically.
          if (!v.replay) {
            fuzz::GenOptions gen = genBase;
            gen.seed = items[i].seed;
            const ir::Module mod = fuzz::ProgramGen(gen).generate();
            v.text = ir::toString(mod);
          }
        }
      } catch (const std::exception& e) {
        v.simFailed = true;
        v.firstDetail = e.what();
      }
      if (v.failing() && failFast) stop.store(true, std::memory_order_relaxed);
      verdicts[i] = std::move(v);
    }));
  }
  runner::ThreadPool::waitAll(futures);

  // Report, then minimize failures (serially: each minimization is itself
  // a long chain of oracle runs).
  std::uint64_t totalViolations = 0, totalDivergences = 0, totalSimFailed = 0,
                written = 0;
  std::vector<std::size_t> failing;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const SeedVerdict& v = verdicts[i];
    totalViolations += v.violations;
    totalDivergences += v.divergences;
    totalSimFailed += v.simFailed ? 1 : 0;
    if (v.failing()) failing.push_back(i);
  }

  for (const std::size_t i : failing) {
    const SeedVerdict& v = verdicts[i];
    std::cout << "FAIL " << v.label << ": " << v.violations << " violation(s), "
              << v.divergences << " divergence(s)"
              << (v.simFailed ? ", sim failure" : "") << "\n";
    if (!v.firstDetail.empty()) std::cout << "     " << v.firstDetail << "\n";
  }

  if (minimize && !failing.empty()) {
    std::error_code ec;
    fs::create_directories(outDir, ec);
    for (const std::size_t i : failing) {
      SeedVerdict& v = verdicts[i];
      if (v.text.empty() && v.replay) {
        std::ifstream in(items[i].path);
        std::stringstream ss;
        ss << in.rdbuf();
        v.text = ss.str();
      }
      if (v.text.empty() || !v.signature.failing()) continue;
      const fuzz::FailureSignature sig = v.signature;
      fuzz::MinimizeStats stats;
      const std::string minimized = fuzz::minimizeText(
          v.text,
          [&](const std::string& candidate) {
            return fuzz::matches(
                fuzz::checkProgram(
                    [&candidate] { return ir::parseModule(candidate); },
                    checkOpts),
                sig);
          },
          &stats);
      std::string name = v.replay
                             ? fs::path(items[i].path).stem().string() + "-min"
                             : "seed" + std::to_string(v.seed);
      const std::string outPath =
          (fs::path(outDir) / (name + "-" + sig.policy + ".ir")).string();
      std::ofstream out(outPath);
      // The '#' header makes the kernel self-describing; the IR parser
      // skips comment lines, so the fixture replays as-is.
      out << "# levioso-fuzz minimized regression kernel\n"
          << "# source: " << v.label << "\n"
          << "# policy: " << sig.policy
          << (sig.violations ? " (invariant violation)" : "")
          << (sig.divergent ? " (architectural divergence)" : "") << "\n";
      if (!weakenPolicy.empty())
        out << "# weakened: " << weakenPolicy << " every " << weakenEveryN
            << "\n";
      out << "# minimized: " << stats.fromInsts << " -> " << stats.toInsts
          << " insts in " << stats.rounds << " round(s), " << stats.probes
          << " probes\n"
          << minimized;
      if (out.good()) {
        ++written;
        std::cout << "MINIMIZED " << v.label << " -> " << outPath << " ("
                  << stats.fromInsts << " -> " << stats.toInsts
                  << " insts)\n";
      } else {
        std::cerr << "levioso-fuzz: cannot write " << outPath << "\n";
      }
    }
  }

  const auto wallMicros = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  std::cout << (replayPaths.empty() ? "fuzzed " : "replayed ") << items.size()
            << (replayPaths.empty() ? " seeds" : " kernels") << " across "
            << (checkOpts.policies.empty()
                    ? secure::policyNames().size()
                    : checkOpts.policies.size())
            << " policies: " << totalViolations << " violation(s), "
            << totalDivergences << " divergence(s), " << totalSimFailed
            << " sim failure(s)\n";

  if (!manifestPath.empty()) {
    runner::Manifest m;
    m.tool = "levioso-fuzz";
    for (int i = 1; i < argc; ++i) m.args.emplace_back(argv[i]);
    m.threads = pool.size();
    m.wallMicros = wallMicros;
    m.pool = pool.counters();
    runner::Manifest::FuzzInfo info;
    info.seeds = items.size();
    info.seedBase = seedBase;
    info.policies =
        checkOpts.policies.empty() ? secure::policyNames() : checkOpts.policies;
    info.violations = totalViolations;
    info.divergences = totalDivergences;
    info.simFailures = totalSimFailed;
    info.minimized = written;
    m.fuzz = info;
    runner::writeManifestFile(manifestPath, m);
  }

  return failing.empty() ? 0 : 1;
}
