// levioso-top: live introspection of a running levioso-serve daemon
// (docs/SERVE.md "Live status"). Connects as a plain client, sends Status
// frames and renders the StatusReply snapshots — queue depth per lane,
// in-flight jobs with lease ages, per-worker health, remote cache-tier
// counters and job-latency histogram totals.
//
//   levioso-top --connect 127.0.0.1:7733            # refreshing display
//   levioso-top --connect 127.0.0.1:7733 --json     # one snapshot, JSON
//
// --json prints exactly one snapshot as a JSON object (the same schema a
// --metrics-log line carries; docs/OBSERVABILITY.md) and exits — the mode
// CI and scripts consume. Without it the tool polls every --interval-ms
// (ANSI-refreshing when stderr is a TTY, plain appended snapshots when
// not) until interrupted. Every network wait — the connect itself and
// each status reply — is bounded by --timeout-ms (default 5000), so a
// half-open daemon surfaces as exit 2 with a clear message instead of a
// hang. Exits 0 on success / orderly daemon shutdown, 2 on bad arguments
// or a timeout, 3 on a connection or protocol error.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "runner/resultcache.hpp"
#include "serve/protocol.hpp"
#include "support/cliparse.hpp"
#include "support/error.hpp"
#include "support/framing.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/socket.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

#include <unistd.h>

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: levioso-top --connect HOST:PORT [--json]\n"
               "                   [--interval-ms N] [--timeout-ms N]\n"
               "                   [--token TOK] [--quiet] [-v]\n"
               "--json prints one status snapshot as JSON and exits;\n"
               "otherwise the status is re-polled every --interval-ms\n"
               "(default 1000) until interrupted. --timeout-ms (default\n"
               "5000) bounds the connect and every status reply; --token\n"
               "defaults to the LEVIOSO_TOKEN env var.\n";
  std::exit(2);
}

volatile std::sig_atomic_t gStop = 0;
void onSignal(int) { gStop = 1; }

/// Blocking request/reply on an established daemon connection. Returns
/// false on orderly EOF (daemon shut down); throws on a protocol error.
bool pollStatus(int fd, framing::FrameDecoder& dec, serve::StatusInfo& out) {
  sock::writeAll(fd, framing::encodeFrame(serve::encodeMessage(
                         [] {
                           serve::Message m;
                           m.type = serve::MsgType::Status;
                           return m;
                         }())));
  for (;;) {
    while (auto payload = dec.next()) {
      const serve::Message m = serve::decodeMessage(*payload);
      if (m.type == serve::MsgType::Unknown) continue; // newer daemon
      if (m.type != serve::MsgType::StatusReply)
        throw Error(std::string("unexpected ") + serve::msgTypeName(m.type) +
                    " frame while waiting for a status reply");
      out = m.status;
      return true;
    }
    char buf[65536];
    const std::size_t n = sock::readSome(fd, buf, sizeof(buf));
    if (n == 0) return false;
    dec.feed(buf, n);
  }
}

std::string fmtAge(std::int64_t micros) {
  if (micros < 0) return "-";
  return fmtF(static_cast<double>(micros) / 1e6, 1) + "s";
}

void render(std::ostream& os, const serve::StatusInfo& s) {
  os << "levioso-serve up " << fmtAge(s.uptimeMicros) << ", salt "
     << s.salt << ", protocol v" << s.protocolVersion << "\n";
  os << "queued " << s.queuedJobs << " across " << s.lanes.size()
     << " lane(s), inflight " << s.inflight.size() << ", workers "
     << s.workers.size() << " connected / " << s.workersSeen
     << " lifetime, jobs completed " << s.jobsCompleted << ", redispatches "
     << s.redispatches << "\n";
  os << "remote cache: " << s.remoteHits << " hits, " << s.remoteMisses
     << " misses, " << s.remotePuts << " puts, " << s.remoteRejected
     << " rejected, " << s.remoteEvictions << " evicted ("
     << s.remoteEvictedBytes << " B)\n";

  if (!s.lanes.empty()) {
    Table t({"lane(client)", "depth"});
    for (const auto& l : s.lanes)
      t.addRow({std::to_string(l.client), std::to_string(l.depth)});
    t.print(os);
  }
  if (!s.workers.empty()) {
    Table t({"worker", "state", "done", "failures", "heartbeat", "job",
             "lease"});
    for (const auto& w : s.workers)
      t.addRow({std::to_string(w.id), w.state,
                std::to_string(w.jobsCompleted), std::to_string(w.failures),
                fmtAge(w.lastHeartbeatAgeMicros),
                w.leasedJob == 0 ? "-" : std::to_string(w.leasedJob),
                w.leasedJob == 0 ? "-" : fmtAge(w.leaseAgeMicros)});
    t.print(os);
  }
  if (!s.inflight.empty()) {
    Table t({"job", "spec", "worker", "dispatches", "lease"});
    for (const auto& j : s.inflight)
      t.addRow({std::to_string(j.id), j.desc, std::to_string(j.worker),
                std::to_string(j.dispatches), fmtAge(j.leaseAgeMicros)});
    t.print(os);
  }

  // The latency histograms summarize as count/mean/max per metric.
  const auto metric = [&](const char* name, const char* suffix) {
    const auto it = s.metrics.find(std::string("hist.") + name + suffix);
    return it == s.metrics.end() ? std::int64_t{0} : it->second;
  };
  for (const char* name : {"serve.queueMicros", "serve.jobMicros",
                           "serve.heartbeatRttMicros"}) {
    const std::int64_t count = metric(name, ".count");
    if (count == 0) continue;
    const std::int64_t sum = metric(name, ".sum");
    os << name << ": n=" << count << " mean="
       << fmtF(static_cast<double>(sum) / static_cast<double>(count) / 1e3, 2)
       << "ms max="
       << fmtF(static_cast<double>(metric(name, ".max")) / 1e3, 2) << "ms\n";
  }
}

} // namespace

int main(int argc, char** argv) {
  std::string endpoint;
  bool jsonOnce = false;
  std::int64_t intervalMicros = 1'000'000;
  std::int64_t timeoutMicros = 5'000'000;
  std::string token;
  if (const char* envToken = std::getenv("LEVIOSO_TOKEN")) token = envToken;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--connect")
      endpoint = next();
    else if (a == "--json")
      jsonOnce = true;
    else if (a == "--interval-ms")
      intervalMicros =
          requireInt("levioso-top", "--interval-ms", next(), 1, 86'400'000) *
          1000;
    else if (a == "--timeout-ms")
      timeoutMicros =
          requireInt("levioso-top", "--timeout-ms", next(), 1, 86'400'000) *
          1000;
    else if (a == "--token")
      token = next();
    else if (a == "--quiet")
      log::setThreshold(log::Level::Warn);
    else if (a == "-v")
      log::setThreshold(log::Level::Debug);
    else
      usage();
  }
  if (endpoint.empty()) usage();

  try {
    std::string host;
    std::uint16_t port = 0;
    sock::parseEndpoint(endpoint, host, port);
    // The timeout covers the connect AND every later read (SO_SNDTIMEO /
    // SO_RCVTIMEO): a half-open daemon must never hang a monitoring tool.
    sock::Fd fd = sock::connectTo(host, port, timeoutMicros);

    serve::Message hello;
    hello.type = serve::MsgType::Hello;
    hello.role = "client";
    hello.token = token;
    sock::writeAll(fd.get(),
                   framing::encodeFrame(serve::encodeMessage(hello)));

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    framing::FrameDecoder dec;
    const bool tty = ::isatty(1) != 0;
    bool first = true;
    for (;;) {
      serve::StatusInfo s;
      if (!pollStatus(fd.get(), dec, s)) {
        if (first) throw Error("daemon closed the connection");
        std::cerr << "levioso-top: daemon shut down\n";
        return 0;
      }
      if (jsonOnce) {
        JsonWriter w(std::cout, 2);
        w.beginObject();
        serve::writeStatusFields(w, s);
        w.endObject();
        std::cout << "\n";
        return 0;
      }
      if (tty && !first) std::cout << "\033[H\033[2J";
      render(std::cout, s);
      if (s.salt != runner::kCodeVersionSalt)
        std::cout << "WARNING: daemon salt '" << s.salt
                  << "' differs from this build's '"
                  << runner::kCodeVersionSalt
                  << "' — results are not cache-compatible\n";
      std::cout.flush();
      first = false;
      if (gStop != 0) return 0;
      ::usleep(static_cast<useconds_t>(intervalMicros));
      if (gStop != 0) return 0;
    }
  } catch (const TransientError& e) {
    // Timed-out connect or status reply: the dedicated exit code scripts
    // watch for ("daemon unresponsive" is distinct from "protocol error").
    std::cerr << "levioso-top: daemon did not respond within "
              << timeoutMicros / 1000 << " ms: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    std::cerr << "levioso-top: " << e.what() << "\n";
    return 3;
  }
}
