// levioso-serve: the distributed-sweep daemon (docs/SERVE.md). Listens for
// levioso-batch --connect clients and levioso-worker processes, queues
// submitted grid points with per-client fairness, leases them to workers
// with heartbeat-based fail-over, and fronts the shared remote result
// cache tier.
//
//   levioso-serve --port 7733 --cache-dir .levioso-cache
//   levioso-serve --port 0 --port-file serve.port   # ephemeral port for CI
//
// The bound port is printed to stdout (and to --port-file when given) the
// moment the daemon is listening, so scripts can wait for it. SIGINT /
// SIGTERM stop the daemon cleanly; in-flight jobs are lost (clients see
// the connection close and fail their run), cached results are not.
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "serve/daemon.hpp"
#include "support/cliparse.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: levioso-serve [--port N] [--port-file FILE]\n"
         "                     [--cache-dir DIR|--no-cache] [--cache-max-mb N]\n"
         "                     [--lease-ms N] [--max-dispatches N]\n"
         "                     [--journal FILE] [--token TOK]\n"
         "                     [--metrics-log FILE] [--metrics-interval-ms N]\n"
         "                     [--quiet] [-v]\n"
         "--port 0 (the default) picks an ephemeral port; the bound port is\n"
         "printed to stdout either way. --metrics-log appends one JSON status\n"
         "snapshot per interval (levioso-report --serve-log summarizes it).\n"
         "--journal makes queued/in-flight jobs survive a daemon restart\n"
         "(docs/SERVE.md \"Surviving restarts\"); --token (default: the\n"
         "LEVIOSO_TOKEN env var) requires every peer to present the same\n"
         "shared secret in its hello.\n";
  std::exit(2);
}

serve::Daemon* gDaemon = nullptr;

void onSignal(int) {
  if (gDaemon != nullptr) gDaemon->stop();
}

} // namespace

int main(int argc, char** argv) {
  serve::DaemonOptions opts;
  std::string portFile;
  if (const char* envToken = std::getenv("LEVIOSO_TOKEN"))
    opts.token = envToken;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--port")
      opts.port = static_cast<std::uint16_t>(
          requireInt("levioso-serve", "--port", next(), 0, 65535));
    else if (a == "--port-file")
      portFile = next();
    else if (a == "--cache-dir")
      opts.cacheDir = next();
    else if (a == "--no-cache")
      opts.cacheDir.clear();
    else if (a == "--cache-max-mb")
      opts.cacheMaxBytes =
          static_cast<std::uint64_t>(requireInt("levioso-serve",
                                                "--cache-max-mb", next(), 0,
                                                1 << 20))
          << 20;
    else if (a == "--lease-ms")
      opts.leaseMicros =
          requireInt("levioso-serve", "--lease-ms", next(), 1, 86'400'000) *
          1000;
    else if (a == "--max-dispatches")
      opts.maxDispatches = requireIntArg("levioso-serve", "--max-dispatches",
                                         next(), 1, 1 << 30);
    else if (a == "--journal")
      opts.journalPath = next();
    else if (a == "--token")
      opts.token = next();
    else if (a == "--metrics-log")
      opts.metricsLogPath = next();
    else if (a == "--metrics-interval-ms")
      opts.metricsIntervalMicros =
          requireInt("levioso-serve", "--metrics-interval-ms", next(), 1,
                     86'400'000) *
          1000;
    else if (a == "--quiet")
      log::setThreshold(log::Level::Warn);
    else if (a == "-v")
      log::setThreshold(log::Level::Debug);
    else
      usage();
  }

  try {
    serve::Daemon daemon(opts);
    gDaemon = &daemon;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::cout << daemon.port() << std::endl;
    if (!portFile.empty()) {
      std::ofstream out(portFile);
      out << daemon.port() << "\n";
      if (!out.good()) {
        std::cerr << "levioso-serve: cannot write " << portFile << "\n";
        return 2;
      }
    }

    daemon.run();
    const auto s = daemon.stats();
    LEV_LOG_INFO("serve", "final counters",
                 {{"workersSeen", s.workersSeen},
                  {"jobsCompleted", s.jobsCompleted},
                  {"jobsRecovered", s.jobsRecovered},
                  {"redispatches", s.redispatches},
                  {"remoteHits", s.cache.hits},
                  {"remotePuts", s.cache.puts},
                  {"remoteEvictions", s.cache.evictions}});
    return 0;
  } catch (const Error& e) {
    std::cerr << "levioso-serve: " << e.what() << "\n";
    return 3;
  }
}
