// levioso-report: compare two runs of the experiment stack and gate on
// regressions. Accepts any two files of the SAME kind among
//
//   * runner reports     (levioso-batch / bench --json output)
//   * speed baselines    (micro_speed --speed-json output)
//   * run manifests      (manifest.json written next to a report)
//
// and prints a per-policy (or per-metric) delta table. With
// --max-regress PCT the exit status becomes the gate: 1 when any policy
// regressed past the threshold (overhead-ratio increase for reports, host
// MIPS drop for speed baselines), 0 otherwise. --warn-only downgrades the
// gate to a warning for noisy metrics (CI uses it for MIPS).
//
// Failed points (version-3 "error" entries, docs/ROBUSTNESS.md) in the NEW
// report always gate: each is listed as a FAILED table row and a
// regression line, and the exit status is 1 unless --warn-only.
//
// --serve-log FILE is a single-file mode: it summarizes a levioso-serve
// --metrics-log (JSON lines of status snapshots, docs/OBSERVABILITY.md)
// as covered time, peak queue/in-flight depth and job-completion deltas.
// Always report-only (exit 0 or 2).
//
//   levioso-report --diff old.json new.json --max-regress 2
//   levioso-report --diff bench/baselines/BENCH_speed.json
//                  BENCH_speed.json --max-regress 30 --warn-only
//   levioso-report --serve-log serve-metrics.jsonl
#include <iostream>
#include <string>
#include <vector>

#include "runner/report.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: levioso-report --diff OLD NEW [--max-regress PCT]\n"
               "                      [--warn-only] [--baseline-policy P]\n"
               "                      [--csv] [-v] [--quiet]\n"
               "       levioso-report --serve-log FILE [--csv]\n"
               "  OLD/NEW: two runner reports, two micro_speed baselines,\n"
               "  two run manifests or two serve status snapshots (kinds\n"
               "  must match). --serve-log summarizes one levioso-serve\n"
               "  --metrics-log file instead of diffing two documents.\n"
               "  exit status: 0 ok, 1 regression past --max-regress,\n"
               "  2 bad usage or unreadable input\n";
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string serveLog;
  runner::report::DiffOptions opts;
  bool warnOnly = false, csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--diff") {
      files.push_back(next());
      files.push_back(next());
    } else if (a == "--serve-log") {
      serveLog = next();
    } else if (a == "--max-regress") {
      opts.maxRegressPct = std::atof(next().c_str());
    } else if (a == "--baseline-policy") {
      opts.baselinePolicy = next();
    } else if (a == "--warn-only") {
      warnOnly = true;
    } else if (a == "--csv") {
      csv = true;
    } else if (a == "-v") {
      log::setThreshold(log::Level::Debug);
    } else if (a == "--quiet") {
      log::setThreshold(log::Level::Warn);
    } else if (!a.empty() && a[0] != '-') {
      files.push_back(a); // bare OLD NEW positionals
    } else {
      usage();
    }
  }
  if (!serveLog.empty()) {
    if (!files.empty()) usage(); // one mode per invocation
    try {
      const runner::report::Diff d =
          runner::report::summarizeMetricsLog(serveLog);
      std::cout << "== serve metrics log: " << serveLog << " ==\n";
      if (csv)
        d.table.printCsv(std::cout);
      else
        d.table.print(std::cout);
      for (const std::string& note : d.notes)
        std::cout << "# note: " << note << "\n";
      return 0;
    } catch (const Error& e) {
      std::cerr << "levioso-report: " << e.what() << "\n";
      return 2;
    }
  }
  if (files.size() != 2) usage();

  try {
    const json::JsonValue oldDoc = json::parseFile(files[0]);
    const json::JsonValue newDoc = json::parseFile(files[1]);
    const auto kind = runner::report::detectKind(oldDoc);
    LEV_LOG_INFO("report", "diffing",
                 {{"kind", runner::report::kindName(kind)},
                  {"old", files[0]},
                  {"new", files[1]}});
    const runner::report::Diff d =
        runner::report::diff(oldDoc, newDoc, opts);

    std::cout << "== " << runner::report::kindName(kind) << " diff: "
              << files[0] << " -> " << files[1] << " ==\n";
    if (csv)
      d.table.printCsv(std::cout);
    else
      d.table.print(std::cout);
    for (const std::string& note : d.notes)
      std::cout << "# note: " << note << "\n";

    if (d.regressions.empty()) {
      if (opts.maxRegressPct >= 0)
        std::cout << "# ok: no regression past " << opts.maxRegressPct
                  << "%\n";
      return 0;
    }
    for (const std::string& r : d.regressions) {
      LEV_LOG_WARN("report", "regression", {{"what", r}});
      std::cout << "# regression: " << r << "\n";
    }
    std::cout << "# " << d.regressions.size() << " regression(s)"
              << (opts.maxRegressPct >= 0
                      ? " past " + std::to_string(opts.maxRegressPct) + "%"
                      : std::string())
              << (warnOnly ? " [warn-only]" : "") << "\n";
    return warnOnly ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "levioso-report: " << e.what() << "\n";
    return 2;
  }
}
