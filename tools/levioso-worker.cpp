// levioso-worker: one serve-fleet execution process (docs/SERVE.md).
// Connects to a levioso-serve daemon, pulls jobs one at a time, runs them
// through the exact compile/simulate path a local sweep uses, and reports
// each outcome. Results are cached locally (L1, .levioso-cache/) and
// offered to the daemon's shared remote tier.
//
//   levioso-worker --connect host:7733
//   levioso-worker --connect 127.0.0.1:7733 --cache-dir /tmp/l1 --quiet
//
// Exits 0 when the daemon closes the connection (orderly shutdown or a
// network loss — the daemon re-dispatches anything this worker held), 2 on
// bad arguments, 3 on a protocol error.
#include <iostream>
#include <string>

#include "serve/worker.hpp"
#include "support/cliparse.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/socket.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: levioso-worker --connect HOST:PORT\n"
               "                      [--cache-dir DIR|--no-cache]\n"
               "                      [--heartbeat-ms N] [--quiet] [-v]\n";
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  serve::WorkerOptions opts;
  std::string endpoint;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--connect")
      endpoint = next();
    else if (a == "--cache-dir")
      opts.cacheDir = next();
    else if (a == "--no-cache")
      opts.cacheDir.clear();
    else if (a == "--heartbeat-ms")
      opts.heartbeatMicros =
          requireInt("levioso-worker", "--heartbeat-ms", next(), 1,
                     86'400'000) *
          1000;
    else if (a == "--quiet")
      log::setThreshold(log::Level::Warn);
    else if (a == "-v")
      log::setThreshold(log::Level::Debug);
    else
      usage();
  }
  if (endpoint.empty()) usage();

  try {
    sock::parseEndpoint(endpoint, opts.host, opts.port);
    const std::uint64_t jobs = serve::runWorker(opts);
    LEV_LOG_INFO("worker", "daemon disconnected; exiting",
                 {{"jobsDone", jobs}});
    return 0;
  } catch (const Error& e) {
    std::cerr << "levioso-worker: " << e.what() << "\n";
    return 3;
  }
}
