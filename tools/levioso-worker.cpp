// levioso-worker: one serve-fleet execution process (docs/SERVE.md).
// Connects to a levioso-serve daemon, pulls jobs one at a time, runs them
// through the exact compile/simulate path a local sweep uses, and reports
// each outcome. Results are cached locally (L1, .levioso-cache/) and
// offered to the daemon's shared remote tier.
//
//   levioso-worker --connect host:7733
//   levioso-worker --connect 127.0.0.1:7733 --cache-dir /tmp/l1 --quiet
//
// A lost daemon is OUTWAITED by default: the worker reconnects with
// jittered exponential backoff (docs/SERVE.md "Surviving restarts"),
// abandoning any half-done job whose lease the daemon forfeits anyway.
// --no-reconnect restores the old exit-on-disconnect behavior, and
// --max-reconnects N bounds how many consecutive dead connection attempts
// are tolerated before giving up.
//
// Exits 0 when the reconnect budget is spent (or, with --no-reconnect,
// when the daemon closes the connection), 2 on bad arguments, 3 on a
// protocol error.
#include <cstdlib>
#include <iostream>
#include <string>

#include "serve/worker.hpp"
#include "support/cliparse.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/socket.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: levioso-worker --connect HOST:PORT\n"
               "                      [--cache-dir DIR|--no-cache]\n"
               "                      [--heartbeat-ms N] [--token TOK]\n"
               "                      [--max-reconnects N] [--no-reconnect]\n"
               "                      [--reconnect-backoff-ms N]\n"
               "                      [--quiet] [-v]\n"
               "Reconnects to a lost daemon forever by default (jittered\n"
               "exponential backoff); --token defaults to the LEVIOSO_TOKEN\n"
               "env var.\n";
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  serve::WorkerOptions opts;
  serve::ReconnectOptions reconnect;
  bool noReconnect = false;
  std::string endpoint;
  if (const char* envToken = std::getenv("LEVIOSO_TOKEN"))
    opts.token = envToken;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--connect")
      endpoint = next();
    else if (a == "--cache-dir")
      opts.cacheDir = next();
    else if (a == "--no-cache")
      opts.cacheDir.clear();
    else if (a == "--heartbeat-ms")
      opts.heartbeatMicros =
          requireInt("levioso-worker", "--heartbeat-ms", next(), 1,
                     86'400'000) *
          1000;
    else if (a == "--token")
      opts.token = next();
    else if (a == "--max-reconnects")
      reconnect.maxReconnects = requireIntArg(
          "levioso-worker", "--max-reconnects", next(), 0, 1 << 30);
    else if (a == "--no-reconnect")
      noReconnect = true;
    else if (a == "--reconnect-backoff-ms")
      reconnect.backoffMicros =
          requireInt("levioso-worker", "--reconnect-backoff-ms", next(), 1,
                     3'600'000) *
          1000;
    else if (a == "--quiet")
      log::setThreshold(log::Level::Warn);
    else if (a == "-v")
      log::setThreshold(log::Level::Debug);
    else
      usage();
  }
  if (endpoint.empty()) usage();

  try {
    sock::parseEndpoint(endpoint, opts.host, opts.port);
    const std::uint64_t jobs = noReconnect
                                   ? serve::runWorker(opts)
                                   : serve::runWorkerLoop(opts, reconnect);
    LEV_LOG_INFO("worker", "exiting", {{"jobsDone", jobs}});
    return 0;
  } catch (const Error& e) {
    std::cerr << "levioso-worker: " << e.what() << "\n";
    return 3;
  }
}
