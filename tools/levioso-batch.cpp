// levioso-batch: run an arbitrary experiment sweep from command-line grid
// specs through the parallel runner and report the results as a table
// and/or a machine-readable JSON report (schema: docs/RUNNER.md).
//
//   levioso-batch --kernels mcf_chase --policies unsafe,fence,levioso
//                 --jobs 4 --json out.json
//   levioso-batch --kernels all --policies unsafe,levioso
//                 --robs 64,128,192 --drams 100,400 --budgets 2,4
//
// The sweep is the cartesian product of every list option. Points are
// deduplicated, cached under .levioso-cache/ (unless --no-cache) and
// executed concurrently; results print in grid order regardless of the
// execution interleaving.
//
// Observability (docs/OBSERVABILITY.md): a live [done/total, hit-rate,
// ETA] progress line on stderr while jobs run (TTY only), an end-of-run
// summary line, a run manifest (manifest.json, or derived from --json as
// <stem>.manifest.json) and an optional Chrome trace of host spans
// (--host-trace). -v / --quiet move the log threshold.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>

#include <unistd.h>

#include "runner/manifest.hpp"
#include "runner/sweep.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: levioso-batch --kernels a,b|all --policies p,q [--scales "
         "N,M]\n"
         "                     [--budgets K,L] [--robs N,M] [--widths N,M]\n"
         "                     [--drams N,M] [--jobs N] [--json FILE]\n"
         "                     [--csv] [--stats] [--no-cache] [--cache-dir "
         "DIR]\n"
         "                     [--manifest FILE] [--no-manifest]\n"
         "                     [--host-trace FILE] [--quiet] [-v]\n"
         "                     [--keep-going|--fail-fast] [--retries N]\n"
         "                     [--deadline-ms N]\n"
         "exit codes: 0 all points ok, 1 partial failure (--keep-going),\n"
         "            2 bad input, 3 total failure\n";
  std::exit(2);
}

std::vector<std::string> parseList(const std::string& s) {
  std::vector<std::string> out;
  for (auto part : split(s, ',')) {
    const auto t = trim(part);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::vector<int> parseInts(const std::string& s) {
  std::vector<int> out;
  for (const std::string& part : parseList(s)) {
    std::int64_t v = 0;
    if (!parseInt(part, v)) usage();
    out.push_back(static_cast<int>(v));
  }
  return out;
}

/// The live progress line: thread-safe (called from pool workers),
/// rate-limited, TTY-only so CI logs are not flooded with \r frames.
class ProgressLine {
public:
  explicit ProgressLine(const runner::ResultCache* cache)
      : cache_(cache), tty_(::isatty(2) != 0),
        start_(std::chrono::steady_clock::now()) {}

  void operator()(std::size_t done, std::size_t total) {
    if (!tty_) return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (done != total && now - lastDraw_ < std::chrono::milliseconds(100))
      return;
    lastDraw_ = now;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    std::string line = "[" + std::to_string(done) + "/" +
                       std::to_string(total) + " jobs";
    if (cache_ != nullptr) {
      const auto c = cache_->counters();
      const std::uint64_t lookups = c.hits + c.misses;
      if (lookups > 0)
        line += ", " +
                fmtPct(static_cast<double>(c.hits) /
                       static_cast<double>(lookups)) +
                " hit";
    }
    if (done > 0 && done < total) {
      const double eta =
          elapsed / static_cast<double>(done) *
          static_cast<double>(total - done);
      line += ", ETA " + fmtF(eta, 0) + "s";
    }
    line += "]";
    std::cerr << '\r' << line << "\033[K" << std::flush;
    if (done == total) std::cerr << '\r' << "\033[K" << std::flush;
  }

private:
  const runner::ResultCache* cache_;
  bool tty_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::chrono::steady_clock::time_point lastDraw_{};
};

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> kernels, policies;
  std::vector<int> scales = {1}, budgets = {4}, robs = {0}, widths = {0},
                   drams = {0};
  int jobs = 0;
  bool csv = false, includeStats = false, useCache = true, quiet = false,
       writeManifest = true;
  bool keepGoing = false;
  int retries = 2;
  std::int64_t deadlineMs = 0;
  std::string jsonPath, cacheDir, manifestPath, hostTracePath;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--kernels")
      kernels = parseList(next());
    else if (a == "--policies")
      policies = parseList(next());
    else if (a == "--scales")
      scales = parseInts(next());
    else if (a == "--budgets")
      budgets = parseInts(next());
    else if (a == "--robs")
      robs = parseInts(next());
    else if (a == "--widths")
      widths = parseInts(next());
    else if (a == "--drams")
      drams = parseInts(next());
    else if (a == "--jobs")
      jobs = std::max(1, std::atoi(next().c_str()));
    else if (a == "--json")
      jsonPath = next();
    else if (a == "--cache-dir")
      cacheDir = next();
    else if (a == "--manifest")
      manifestPath = next();
    else if (a == "--host-trace")
      hostTracePath = next();
    else if (a == "--csv")
      csv = true;
    else if (a == "--stats")
      includeStats = true;
    else if (a == "--no-cache")
      useCache = false;
    else if (a == "--no-manifest")
      writeManifest = false;
    else if (a == "--keep-going")
      keepGoing = true;
    else if (a == "--fail-fast")
      keepGoing = false;
    else if (a == "--retries")
      retries = std::max(0, std::atoi(next().c_str()));
    else if (a == "--deadline-ms")
      deadlineMs = std::max(0, std::atoi(next().c_str()));
    else if (a == "--quiet") {
      quiet = true;
      log::setThreshold(log::Level::Warn);
    } else if (a == "-v")
      log::setThreshold(log::Level::Debug);
    else
      usage();
  }
  if (kernels.empty() || policies.empty()) usage();
  if (kernels.size() == 1 && kernels[0] == "all")
    kernels = workloads::kernelNames();

  // Bad input is diagnosed up front (exit 2) rather than surfacing later as
  // a per-job compile failure — a typo should not burn a whole sweep.
  {
    const std::vector<std::string> known = workloads::kernelNames();
    for (const std::string& k : kernels)
      if (std::find(known.begin(), known.end(), k) == known.end()) {
        std::cerr << "levioso-batch: unknown kernel '" << k << "' (known:";
        for (const std::string& n : known) std::cerr << ' ' << n;
        std::cerr << ")\n";
        return 2;
      }
  }

  const std::vector<std::string> cmdline(argv + 1, argv + argc);
  try {
    runner::ResultCache cache(
        {cacheDir.empty() ? runner::defaultCacheDir() : cacheDir,
         runner::kCodeVersionSalt});
    runner::Sweep::Options opts;
    opts.jobs = jobs;
    opts.cache = useCache ? &cache : nullptr;
    opts.failPolicy = keepGoing ? runner::FailPolicy::KeepGoing
                                : runner::FailPolicy::FailFast;
    opts.maxRetries = retries;
    ProgressLine progress(opts.cache);
    if (!quiet)
      opts.onProgress = [&progress](std::size_t done, std::size_t total) {
        progress(done, total);
      };
    runner::Sweep sweep(opts);

    for (const std::string& kernel : kernels)
      for (const int scale : scales)
        for (const int budget : budgets)
          for (const int rob : robs)
            for (const int width : widths)
              for (const int dram : drams)
                for (const std::string& policy : policies) {
                  runner::JobSpec spec;
                  spec.kernel = kernel;
                  spec.scale = std::max(1, scale);
                  spec.policy = policy;
                  spec.budget = budget;
                  if (rob > 0) spec.cfg.robSize = rob;
                  if (width > 0)
                    spec.cfg.fetchWidth = spec.cfg.renameWidth =
                        spec.cfg.issueWidth = spec.cfg.commitWidth = width;
                  if (dram > 0) spec.cfg.mem.memLatency = dram;
                  spec.deadlineMicros = deadlineMs * 1000;
                  sweep.add(spec);
                }
    LEV_LOG_INFO("batch", "sweep configured",
                 {{"points", sweep.specs().size()},
                  {"threads", sweep.threadCount()},
                  {"cache", useCache ? cache.dir() : std::string("off")}});

    // Emit the manifest even when the run fails: a half-finished run's
    // counters and spans are exactly what a post-mortem needs.
    const auto finishManifest = [&](const char* outcome) {
      if (!writeManifest) return;
      runner::Manifest m =
          runner::makeManifest("levioso-batch", cmdline, sweep);
      m.reportPath = jsonPath;
      if (*outcome != '\0') m.args.push_back(std::string("#") + outcome);
      runner::writeManifestFile(manifestPath.empty()
                                    ? runner::manifestPathFor(jsonPath)
                                    : manifestPath,
                                m);
    };

    std::vector<runner::RunRecord> records;
    try {
      records = sweep.run();
    } catch (...) {
      finishManifest("failed");
      throw;
    }

    const auto& outcomes = sweep.outcomes();
    const auto pointFailed = [&outcomes](std::size_t i) {
      return i < outcomes.size() && !outcomes[i].ok;
    };
    if (!quiet) {
      Table t({"kernel", "scale", "policy", "budget", "rob", "width", "dram",
               "cycles", "insts", "ipc", "cached"});
      for (std::size_t i = 0; i < records.size(); ++i) {
        const runner::JobSpec& s = sweep.specs()[i];
        const runner::RunRecord& r = records[i];
        if (pointFailed(i)) {
          t.addRow({s.kernel, std::to_string(s.scale), s.policy,
                    std::to_string(s.budget), std::to_string(s.cfg.robSize),
                    std::to_string(s.cfg.issueWidth),
                    std::to_string(s.cfg.mem.memLatency), "-", "-", "-",
                    runner::errorKindName(outcomes[i].errorKind)});
          continue;
        }
        t.addRow({s.kernel, std::to_string(s.scale), s.policy,
                  std::to_string(s.budget), std::to_string(s.cfg.robSize),
                  std::to_string(s.cfg.issueWidth),
                  std::to_string(s.cfg.mem.memLatency),
                  std::to_string(r.summary.cycles),
                  std::to_string(r.summary.insts), fmtF(r.summary.ipc, 3),
                  r.fromCache ? "yes" : "no"});
      }
      if (csv)
        t.printCsv(std::cout);
      else
        t.print(std::cout);
    }

    // End-of-run summary: what ran, what the cache reused, how long.
    const auto& c = sweep.counters();
    const double hitRate =
        c.unique == 0 ? 0.0
                      : static_cast<double>(c.cacheHits) /
                            static_cast<double>(c.unique);
    std::size_t failedPoints = 0;
    for (std::size_t i = 0; i < records.size(); ++i)
      if (pointFailed(i)) ++failedPoints;
    std::cout << "# " << c.points << " points, " << c.unique << " unique, "
              << c.cacheHits << " cache hits (" << fmtPct(hitRate)
              << " hit rate), " << c.simulated << " simulated on "
              << sweep.threadCount() << " threads in "
              << fmtF(static_cast<double>(sweep.wallMicros()) / 1e6, 2)
              << "s\n";
    if (failedPoints > 0) {
      std::cout << "# " << failedPoints << "/" << records.size()
                << " points failed";
      if (c.retries > 0) std::cout << " (" << c.retries << " retries)";
      std::cout << "\n";
      for (std::size_t i = 0; i < records.size(); ++i)
        if (pointFailed(i))
          std::cout << "# error: " << sweep.specs()[i].kernel << "/"
                    << sweep.specs()[i].policy << ": "
                    << runner::errorKindName(outcomes[i].errorKind) << ": "
                    << outcomes[i].message << "\n";
    }

    if (!jsonPath.empty()) {
      std::ofstream out(jsonPath);
      if (!out) throw Error("cannot write " + jsonPath);
      sweep.writeJson(out, includeStats);
    }
    if (!hostTracePath.empty()) {
      std::ofstream out(hostTracePath);
      if (!out) throw Error("cannot write " + hostTracePath);
      sweep.writeHostTrace(out);
      LEV_LOG_INFO("batch", "wrote host-span trace",
                   {{"path", hostTracePath},
                    {"spans", sweep.hostSpans().size()}});
    }
    // Exit taxonomy (docs/ROBUSTNESS.md): 0 = every point ok, 1 = partial
    // failure under --keep-going, 3 = nothing usable came out. Bad input
    // exits 2 before any work starts; a FailFast failure lands in the
    // catch below (also 3).
    if (failedPoints == 0) {
      finishManifest("");
      return 0;
    }
    finishManifest(failedPoints == records.size() ? "failed" : "partial");
    return failedPoints == records.size() ? 3 : 1;
  } catch (const Error& e) {
    LEV_LOG_ERROR("batch", "run failed", {{"error", e.what()}});
    std::cerr << "levioso-batch: " << e.what() << "\n";
    return 3;
  }
}
