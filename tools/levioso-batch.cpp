// levioso-batch: run an arbitrary experiment sweep from command-line grid
// specs through the parallel runner and report the results as a table
// and/or a machine-readable JSON report (schema: docs/RUNNER.md).
//
//   levioso-batch --kernels mcf_chase --policies unsafe,fence,levioso
//                 --jobs 4 --json out.json
//   levioso-batch --kernels all --policies unsafe,levioso
//                 --robs 64,128,192 --drams 100,400 --budgets 2,4
//   levioso-batch --kernels all --policies all --connect 127.0.0.1:7733
//
// The sweep is the cartesian product of every list option. Points are
// deduplicated, cached under .levioso-cache/ (unless --no-cache) and
// executed concurrently; results print in grid order regardless of the
// execution interleaving.
//
// --sample N:M (docs/PERF.md) switches every point to checkpointed sampled
// simulation: a detailed window of M instructions every N instructions,
// fast-forwarded functionally in between. Cycle counts become estimates,
// records are flagged "sampled" in the JSON report, never enter the result
// cache, and --sample is refused together with --connect.
//
// --connect HOST:PORT (docs/SERVE.md) runs the identical grid through a
// levioso-serve daemon instead of in-process: same table, same version-3
// JSON report (byte-identical warm-for-warm), same exit taxonomy; the run
// manifest gains a "serve" section and drops the in-process pool/cache
// ones. --jobs still sets the reported thread count for report parity.
//
// Observability (docs/OBSERVABILITY.md): a live [done/total, hit-rate,
// ETA] progress line on stderr while jobs run (TTY only), an end-of-run
// summary line, a run manifest (manifest.json, or derived from --json as
// <stem>.manifest.json) and an optional Chrome trace of host spans
// (--host-trace). With --connect the trace is the MERGED cross-host one:
// daemon queue/dispatch slices plus the worker-side compile/simulate
// spans, mapped into this process's clock (docs/SERVE.md "Distributed
// tracing"). -v / --quiet move the log threshold.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>

#include <unistd.h>

#include "runner/manifest.hpp"
#include "runner/sweep.hpp"
#include "serve/client.hpp"
#include "sim/sampling.hpp"
#include "support/cliparse.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: levioso-batch --kernels a,b|all --policies p,q [--scales "
         "N,M]\n"
         "                     [--budgets K,L] [--robs N,M] [--widths N,M]\n"
         "                     [--drams N,M] [--jobs N] [--json FILE]\n"
         "                     [--csv] [--stats] [--no-cache] [--cache-dir "
         "DIR]\n"
         "                     [--manifest FILE] [--no-manifest]\n"
         "                     [--host-trace FILE] [--quiet] [-v]\n"
         "                     [--keep-going|--fail-fast] [--retries N]\n"
         "                     [--deadline-ms N] [--sample N:M]\n"
         "                     [--connect HOST:PORT] [--token TOK]\n"
         "exit codes: 0 all points ok, 1 partial failure (--keep-going),\n"
         "            2 bad input, 3 total failure\n";
  std::exit(2);
}

std::vector<std::string> parseList(const std::string& s) {
  std::vector<std::string> out;
  for (auto part : split(s, ',')) {
    const auto t = trim(part);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::vector<int> parseInts(const std::string& s) {
  std::vector<int> out;
  for (const std::string& part : parseList(s)) {
    std::int64_t v = 0;
    if (!parseInt(part, v)) usage();
    out.push_back(static_cast<int>(v));
  }
  return out;
}

/// The live progress line: thread-safe (called from pool workers),
/// rate-limited, TTY-only so CI logs are not flooded with \r frames.
class ProgressLine {
public:
  explicit ProgressLine(const runner::ResultCache* cache)
      : cache_(cache), tty_(::isatty(2) != 0),
        start_(std::chrono::steady_clock::now()) {}

  void operator()(std::size_t done, std::size_t total) {
    if (!tty_) return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (done != total && now - lastDraw_ < std::chrono::milliseconds(100))
      return;
    lastDraw_ = now;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    std::string line = "[" + std::to_string(done) + "/" +
                       std::to_string(total) + " jobs";
    if (cache_ != nullptr) {
      const auto c = cache_->counters();
      const std::uint64_t lookups = c.hits + c.misses;
      if (lookups > 0)
        line += ", " +
                fmtPct(static_cast<double>(c.hits) /
                       static_cast<double>(lookups)) +
                " hit";
    }
    if (done > 0 && done < total) {
      const double eta =
          elapsed / static_cast<double>(done) *
          static_cast<double>(total - done);
      line += ", ETA " + fmtF(eta, 0) + "s";
    }
    line += "]";
    std::cerr << '\r' << line << "\033[K" << std::flush;
    if (done == total) std::cerr << '\r' << "\033[K" << std::flush;
  }

private:
  const runner::ResultCache* cache_;
  bool tty_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::chrono::steady_clock::time_point lastDraw_{};
};

/// Everything main() parsed, shared by the local and --connect paths.
struct BatchConfig {
  std::vector<std::string> kernels, policies;
  std::vector<int> scales, budgets, robs, widths, drams;
  std::int64_t deadlineMs = 0;
  /// --sample N:M (docs/PERF.md): 0 = exact. Sampled points are estimates,
  /// never cached, and refused in --connect mode (remote workers share a
  /// cache whose records must all be exact).
  std::uint64_t sampleEveryInsts = 0, sampleWindowInsts = 0;
  bool csv = false, includeStats = false, quiet = false;
  bool writeManifest = true;
  std::string jsonPath, manifestPath;
  std::vector<std::string> cmdline;
};

template <class SweepT> void addGrid(SweepT& sweep, const BatchConfig& cfg) {
  for (const std::string& kernel : cfg.kernels)
    for (const int scale : cfg.scales)
      for (const int budget : cfg.budgets)
        for (const int rob : cfg.robs)
          for (const int width : cfg.widths)
            for (const int dram : cfg.drams)
              for (const std::string& policy : cfg.policies) {
                runner::JobSpec spec;
                spec.kernel = kernel;
                spec.scale = std::max(1, scale);
                spec.policy = policy;
                spec.budget = budget;
                if (rob > 0) spec.cfg.robSize = rob;
                if (width > 0)
                  spec.cfg.fetchWidth = spec.cfg.renameWidth =
                      spec.cfg.issueWidth = spec.cfg.commitWidth = width;
                if (dram > 0) spec.cfg.mem.memLatency = dram;
                spec.deadlineMicros = cfg.deadlineMs * 1000;
                spec.sampleEveryInsts = cfg.sampleEveryInsts;
                spec.sampleWindowInsts = cfg.sampleWindowInsts;
                sweep.add(spec);
              }
}

/// Run the configured sweep and produce every output (table, summary,
/// JSON report, manifest) plus the exit code. Identical for a local Sweep
/// and a RemoteSweep — only `makeM` differs (what goes in the manifest)
/// and `afterRun` (local-only extras like the host trace).
template <class SweepT>
int runAndReport(SweepT& sweep, const BatchConfig& cfg,
                 const std::function<runner::Manifest()>& makeM,
                 const std::function<void()>& afterRun) {
  // Emit the manifest even when the run fails: a half-finished run's
  // counters and spans are exactly what a post-mortem needs.
  const auto finishManifest = [&](const char* outcome) {
    if (!cfg.writeManifest) return;
    runner::Manifest m = makeM();
    m.reportPath = cfg.jsonPath;
    if (*outcome != '\0') m.args.push_back(std::string("#") + outcome);
    runner::writeManifestFile(cfg.manifestPath.empty()
                                  ? runner::manifestPathFor(cfg.jsonPath)
                                  : cfg.manifestPath,
                              m);
  };

  std::vector<runner::RunRecord> records;
  try {
    records = sweep.run();
  } catch (...) {
    finishManifest("failed");
    throw;
  }

  const auto& outcomes = sweep.outcomes();
  const auto pointFailed = [&outcomes](std::size_t i) {
    return i < outcomes.size() && !outcomes[i].ok;
  };
  if (!cfg.quiet) {
    Table t({"kernel", "scale", "policy", "budget", "rob", "width", "dram",
             "cycles", "insts", "ipc", "cached"});
    for (std::size_t i = 0; i < records.size(); ++i) {
      const runner::JobSpec& s = sweep.specs()[i];
      const runner::RunRecord& r = records[i];
      if (pointFailed(i)) {
        t.addRow({s.kernel, std::to_string(s.scale), s.policy,
                  std::to_string(s.budget), std::to_string(s.cfg.robSize),
                  std::to_string(s.cfg.issueWidth),
                  std::to_string(s.cfg.mem.memLatency), "-", "-", "-",
                  runner::errorKindName(outcomes[i].errorKind)});
        continue;
      }
      t.addRow({s.kernel, std::to_string(s.scale), s.policy,
                std::to_string(s.budget), std::to_string(s.cfg.robSize),
                std::to_string(s.cfg.issueWidth),
                std::to_string(s.cfg.mem.memLatency),
                std::to_string(r.summary.cycles),
                std::to_string(r.summary.insts), fmtF(r.summary.ipc, 3),
                r.fromCache ? "yes" : "no"});
    }
    if (cfg.csv)
      t.printCsv(std::cout);
    else
      t.print(std::cout);
  }

  // End-of-run summary: what ran, what the cache reused, how long.
  const auto& c = sweep.counters();
  const double hitRate =
      c.unique == 0 ? 0.0
                    : static_cast<double>(c.cacheHits) /
                          static_cast<double>(c.unique);
  std::size_t failedPoints = 0;
  for (std::size_t i = 0; i < records.size(); ++i)
    if (pointFailed(i)) ++failedPoints;
  std::cout << "# " << c.points << " points, " << c.unique << " unique, "
            << c.cacheHits << " cache hits (" << fmtPct(hitRate)
            << " hit rate), " << c.simulated << " simulated on "
            << sweep.threadCount() << " threads in "
            << fmtF(static_cast<double>(sweep.wallMicros()) / 1e6, 2)
            << "s\n";
  if (failedPoints > 0) {
    std::cout << "# " << failedPoints << "/" << records.size()
              << " points failed";
    if (c.retries > 0) std::cout << " (" << c.retries << " retries)";
    std::cout << "\n";
    for (std::size_t i = 0; i < records.size(); ++i)
      if (pointFailed(i))
        std::cout << "# error: " << sweep.specs()[i].kernel << "/"
                  << sweep.specs()[i].policy << ": "
                  << runner::errorKindName(outcomes[i].errorKind) << ": "
                  << outcomes[i].message << "\n";
  }

  if (!cfg.jsonPath.empty()) {
    std::ofstream out(cfg.jsonPath);
    if (!out) throw Error("cannot write " + cfg.jsonPath);
    sweep.writeJson(out, cfg.includeStats);
  }
  if (afterRun) afterRun();
  // Exit taxonomy (docs/ROBUSTNESS.md): 0 = every point ok, 1 = partial
  // failure under --keep-going, 3 = nothing usable came out. Bad input
  // exits 2 before any work starts; a FailFast failure lands in the
  // catch in main() (also 3).
  if (failedPoints == 0) {
    finishManifest("");
    return 0;
  }
  finishManifest(failedPoints == records.size() ? "failed" : "partial");
  return failedPoints == records.size() ? 3 : 1;
}

} // namespace

int main(int argc, char** argv) {
  BatchConfig cfg;
  cfg.scales = {1};
  cfg.budgets = {4};
  cfg.robs = {0};
  cfg.widths = {0};
  cfg.drams = {0};
  int jobs = 0;
  bool useCache = true;
  bool keepGoing = false;
  int retries = 2;
  std::string cacheDir, hostTracePath, connect;
  // Shared secret for --connect (docs/SERVE.md "Surviving restarts");
  // ignored by local sweeps.
  std::string token;
  if (const char* envToken = std::getenv("LEVIOSO_TOKEN")) token = envToken;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--kernels")
      cfg.kernels = parseList(next());
    else if (a == "--policies")
      cfg.policies = parseList(next());
    else if (a == "--scales")
      cfg.scales = parseInts(next());
    else if (a == "--budgets")
      cfg.budgets = parseInts(next());
    else if (a == "--robs")
      cfg.robs = parseInts(next());
    else if (a == "--widths")
      cfg.widths = parseInts(next());
    else if (a == "--drams")
      cfg.drams = parseInts(next());
    else if (a == "--jobs")
      jobs = requireIntArg("levioso-batch", "--jobs", next(), 1, 4096);
    else if (a == "--json")
      cfg.jsonPath = next();
    else if (a == "--cache-dir")
      cacheDir = next();
    else if (a == "--manifest")
      cfg.manifestPath = next();
    else if (a == "--host-trace")
      hostTracePath = next();
    else if (a == "--connect")
      connect = next();
    else if (a == "--token")
      token = next();
    else if (a == "--csv")
      cfg.csv = true;
    else if (a == "--stats")
      cfg.includeStats = true;
    else if (a == "--no-cache")
      useCache = false;
    else if (a == "--no-manifest")
      cfg.writeManifest = false;
    else if (a == "--keep-going")
      keepGoing = true;
    else if (a == "--fail-fast")
      keepGoing = false;
    else if (a == "--retries")
      retries = requireIntArg("levioso-batch", "--retries", next(), 0, 100);
    else if (a == "--deadline-ms")
      cfg.deadlineMs =
          requireIntArg("levioso-batch", "--deadline-ms", next(), 0, 86'400'000);
    else if (a == "--sample") {
      try {
        const sim::SampleOptions s = sim::parseSampleSpec(next());
        cfg.sampleEveryInsts = s.periodInsts;
        cfg.sampleWindowInsts = s.windowInsts;
      } catch (const Error& e) {
        std::cerr << "levioso-batch: " << e.what() << "\n";
        return 2;
      }
    }
    else if (a == "--quiet") {
      cfg.quiet = true;
      log::setThreshold(log::Level::Warn);
    } else if (a == "-v")
      log::setThreshold(log::Level::Debug);
    else
      usage();
  }
  if (cfg.kernels.empty() || cfg.policies.empty()) usage();
  if (cfg.sampleEveryInsts > 0 && !connect.empty()) {
    std::cerr << "levioso-batch: --sample cannot be combined with --connect "
                 "(sampled results are estimates and must not enter the "
                 "shared serve cache)\n";
    return 2;
  }
  if (cfg.kernels.size() == 1 && cfg.kernels[0] == "all")
    cfg.kernels = workloads::kernelNames();

  // Bad input is diagnosed up front (exit 2) rather than surfacing later as
  // a per-job compile failure — a typo should not burn a whole sweep.
  {
    const std::vector<std::string> known = workloads::kernelNames();
    for (const std::string& k : cfg.kernels)
      if (std::find(known.begin(), known.end(), k) == known.end()) {
        std::cerr << "levioso-batch: unknown kernel '" << k << "' (known:";
        for (const std::string& n : known) std::cerr << ' ' << n;
        std::cerr << ")\n";
        return 2;
      }
  }

  cfg.cmdline.assign(argv + 1, argv + argc);
  const auto failPolicy = keepGoing ? runner::FailPolicy::KeepGoing
                                    : runner::FailPolicy::FailFast;
  try {
    if (!connect.empty()) {
      // Thin-client mode (docs/SERVE.md): the daemon and its workers do
      // all the work; this process only ships the grid and the report.
      serve::RemoteSweep::Options opts;
      opts.endpoint = connect;
      opts.jobs = jobs;
      opts.failPolicy = failPolicy;
      opts.maxRetries = retries;
      opts.token = token;
      ProgressLine progress(nullptr);
      if (!cfg.quiet)
        opts.onProgress = [&progress](std::size_t done, std::size_t total) {
          progress(done, total);
        };
      serve::RemoteSweep sweep(opts);
      addGrid(sweep, cfg);
      LEV_LOG_INFO("batch", "sweep configured",
                   {{"points", sweep.specs().size()},
                    {"connect", connect}});
      const auto makeM = [&]() {
        runner::Manifest m;
        m.tool = "levioso-batch";
        m.args = cfg.cmdline;
        m.threads = sweep.threadCount();
        m.wallMicros = sweep.wallMicros();
        m.jobs = sweep.counters();
        const auto& s = sweep.serveStats();
        runner::Manifest::ServeInfo info;
        info.endpoint = s.endpoint.empty() ? connect : s.endpoint;
        info.workersSeen = s.workersSeen;
        info.redispatches = s.runRedispatches;
        info.reconnects = s.reconnects;
        info.remoteCacheHits = s.remoteHits;
        info.remoteCacheMisses = s.remoteMisses;
        info.remoteCachePuts = s.remotePuts;
        info.remoteCacheRejected = s.remoteRejected;
        info.remoteCacheEvictions = s.remoteEvictions;
        info.remoteCacheEvictedBytes = s.remoteEvictedBytes;
        info.daemonSalt = s.daemonSalt;
        info.daemonUptimeMicros = s.daemonUptimeMicros;
        info.daemonProtocolVersion = s.daemonProtocolVersion;
        info.clockOffsetMicros = s.clockOffsetMicros;
        info.clockRttMicros = s.clockRttMicros;
        info.workerSpans = s.workerSpans;
        m.serve = info;
        m.timings = sweep.hostSpans();
        if (faultinject::enabled()) m.faults = faultinject::stats();
        return m;
      };
      const auto afterRun = [&]() {
        if (hostTracePath.empty()) return;
        std::ofstream out(hostTracePath);
        if (!out) throw Error("cannot write " + hostTracePath);
        sweep.writeHostTrace(out);
        LEV_LOG_INFO("batch", "wrote merged cross-host trace",
                     {{"path", hostTracePath},
                      {"spans", sweep.hostSpans().size()},
                      {"workerSpans", sweep.serveStats().workerSpans}});
      };
      return runAndReport(sweep, cfg, makeM, afterRun);
    }

    runner::ResultCache cache(
        {cacheDir.empty() ? runner::defaultCacheDir() : cacheDir,
         runner::kCodeVersionSalt});
    runner::Sweep::Options opts;
    opts.jobs = jobs;
    opts.cache = useCache ? &cache : nullptr;
    opts.failPolicy = failPolicy;
    opts.maxRetries = retries;
    ProgressLine progress(opts.cache);
    if (!cfg.quiet)
      opts.onProgress = [&progress](std::size_t done, std::size_t total) {
        progress(done, total);
      };
    runner::Sweep sweep(opts);
    addGrid(sweep, cfg);
    LEV_LOG_INFO("batch", "sweep configured",
                 {{"points", sweep.specs().size()},
                  {"threads", sweep.threadCount()},
                  {"cache", useCache ? cache.dir() : std::string("off")}});
    const auto makeM = [&]() {
      return runner::makeManifest("levioso-batch", cfg.cmdline, sweep);
    };
    const auto afterRun = [&]() {
      if (hostTracePath.empty()) return;
      std::ofstream out(hostTracePath);
      if (!out) throw Error("cannot write " + hostTracePath);
      sweep.writeHostTrace(out);
      LEV_LOG_INFO("batch", "wrote host-span trace",
                   {{"path", hostTracePath},
                    {"spans", sweep.hostSpans().size()}});
    };
    return runAndReport(sweep, cfg, makeM, afterRun);
  } catch (const Error& e) {
    LEV_LOG_ERROR("batch", "run failed", {{"error", e.what()}});
    std::cerr << "levioso-batch: " << e.what() << "\n";
    return 3;
  }
}
