// levioso-batch: run an arbitrary experiment sweep from command-line grid
// specs through the parallel runner and report the results as a table
// and/or a machine-readable JSON report (schema: docs/RUNNER.md).
//
//   levioso-batch --kernels mcf_chase --policies unsafe,fence,levioso
//                 --jobs 4 --json out.json
//   levioso-batch --kernels all --policies unsafe,levioso
//                 --robs 64,128,192 --drams 100,400 --budgets 2,4
//
// The sweep is the cartesian product of every list option. Points are
// deduplicated, cached under .levioso-cache/ (unless --no-cache) and
// executed concurrently; results print in grid order regardless of the
// execution interleaving.
#include <fstream>
#include <iostream>

#include "runner/sweep.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: levioso-batch --kernels a,b|all --policies p,q [--scales "
         "N,M]\n"
         "                     [--budgets K,L] [--robs N,M] [--widths N,M]\n"
         "                     [--drams N,M] [--jobs N] [--json FILE]\n"
         "                     [--csv] [--stats] [--no-cache] [--cache-dir "
         "DIR]\n";
  std::exit(2);
}

std::vector<std::string> parseList(const std::string& s) {
  std::vector<std::string> out;
  for (auto part : split(s, ',')) {
    const auto t = trim(part);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::vector<int> parseInts(const std::string& s) {
  std::vector<int> out;
  for (const std::string& part : parseList(s)) {
    std::int64_t v = 0;
    if (!parseInt(part, v)) usage();
    out.push_back(static_cast<int>(v));
  }
  return out;
}

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> kernels, policies;
  std::vector<int> scales = {1}, budgets = {4}, robs = {0}, widths = {0},
                   drams = {0};
  int jobs = 0;
  bool csv = false, includeStats = false, useCache = true;
  std::string jsonPath, cacheDir;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--kernels")
      kernels = parseList(next());
    else if (a == "--policies")
      policies = parseList(next());
    else if (a == "--scales")
      scales = parseInts(next());
    else if (a == "--budgets")
      budgets = parseInts(next());
    else if (a == "--robs")
      robs = parseInts(next());
    else if (a == "--widths")
      widths = parseInts(next());
    else if (a == "--drams")
      drams = parseInts(next());
    else if (a == "--jobs")
      jobs = std::max(1, std::atoi(next().c_str()));
    else if (a == "--json")
      jsonPath = next();
    else if (a == "--cache-dir")
      cacheDir = next();
    else if (a == "--csv")
      csv = true;
    else if (a == "--stats")
      includeStats = true;
    else if (a == "--no-cache")
      useCache = false;
    else
      usage();
  }
  if (kernels.empty() || policies.empty()) usage();
  if (kernels.size() == 1 && kernels[0] == "all")
    kernels = workloads::kernelNames();

  try {
    runner::ResultCache cache(
        {cacheDir.empty() ? runner::defaultCacheDir() : cacheDir,
         runner::kCodeVersionSalt});
    runner::Sweep::Options opts;
    opts.jobs = jobs;
    opts.cache = useCache ? &cache : nullptr;
    runner::Sweep sweep(opts);

    for (const std::string& kernel : kernels)
      for (const int scale : scales)
        for (const int budget : budgets)
          for (const int rob : robs)
            for (const int width : widths)
              for (const int dram : drams)
                for (const std::string& policy : policies) {
                  runner::JobSpec spec;
                  spec.kernel = kernel;
                  spec.scale = std::max(1, scale);
                  spec.policy = policy;
                  spec.budget = budget;
                  if (rob > 0) spec.cfg.robSize = rob;
                  if (width > 0)
                    spec.cfg.fetchWidth = spec.cfg.renameWidth =
                        spec.cfg.issueWidth = spec.cfg.commitWidth = width;
                  if (dram > 0) spec.cfg.mem.memLatency = dram;
                  sweep.add(spec);
                }

    const std::vector<runner::RunRecord>& records = sweep.run();

    Table t({"kernel", "scale", "policy", "budget", "rob", "width", "dram",
             "cycles", "insts", "ipc", "cached"});
    for (std::size_t i = 0; i < records.size(); ++i) {
      const runner::JobSpec& s = sweep.specs()[i];
      const runner::RunRecord& r = records[i];
      t.addRow({s.kernel, std::to_string(s.scale), s.policy,
                std::to_string(s.budget), std::to_string(s.cfg.robSize),
                std::to_string(s.cfg.issueWidth),
                std::to_string(s.cfg.mem.memLatency),
                std::to_string(r.summary.cycles),
                std::to_string(r.summary.insts), fmtF(r.summary.ipc, 3),
                r.fromCache ? "yes" : "no"});
    }
    if (csv)
      t.printCsv(std::cout);
    else
      t.print(std::cout);
    const auto& c = sweep.counters();
    std::cout << "# " << c.points << " points, " << c.unique << " unique, "
              << c.cacheHits << " cache hits, " << c.simulated
              << " simulated on " << sweep.threadCount() << " threads\n";

    if (!jsonPath.empty()) {
      std::ofstream out(jsonPath);
      if (!out) throw Error("cannot write " + jsonPath);
      sweep.writeJson(out, includeStats);
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "levioso-batch: " << e.what() << "\n";
    return 1;
  }
}
