// levioso-trace: pipeline trace of a program run under a policy.
//
//   levioso-trace --kernel mcf_chase --policy levioso --cycles 300
//   levioso-trace --gadget spectre_v1 --policy levioso --format chrome
//                 --out trace.json
//   levioso-trace file.asm --policy spt --format csv --events policy-delay
//
// Formats:
//   text    per-line "<cycle> <event> seq=<n> pc=0x<pc> <disasm>" (default)
//   chrome  Chrome trace-event JSON — open in chrome://tracing or Perfetto
//   csv     "cycle,event,seq,pc,arg,cause"
//
// --events filters to a comma-separated list of event kinds (chrome/csv);
// --stats appends the end-of-run counter dump to stderr. Event schema:
// docs/TRACING.md.
#include <fstream>
#include <iostream>
#include <sstream>

#include "backend/compiler.hpp"
#include "isa/asmparser.hpp"
#include "secure/policies.hpp"
#include "support/stats.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "uarch/core.hpp"
#include "workloads/gadgets.hpp"
#include "workloads/kernels.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: levioso-trace (<file.asm>|--kernel <name>|--gadget <name>) "
         "[options]\n"
         "  --policy P       speculation policy (default unsafe)\n"
         "  --cycles N       stop after N cycles (default 200; gadgets run "
         "to halt)\n"
         "  --format F       text | chrome | csv (default text)\n"
         "  --out FILE       write the trace to FILE instead of stdout\n"
         "  --events LIST    comma-separated event kinds to keep "
         "(chrome/csv)\n"
         "  --buffer N       ring capacity in events (default 65536)\n"
         "  --stats          dump end-of-run counters to stderr\n"
         "  gadgets: spectre_v1 | nonspec_secret | spectre_v2\n";
  std::exit(2);
}

std::vector<trace::EventKind> parseEventList(const std::string& list) {
  std::vector<trace::EventKind> kinds;
  std::stringstream ss(list);
  std::string name;
  while (std::getline(ss, name, ',')) {
    trace::EventKind k;
    if (!trace::parseEventKind(name, k))
      throw Error("unknown event kind: " + name);
    kinds.push_back(k);
  }
  return kinds;
}

isa::Program buildGadget(const std::string& name) {
  if (name == "spectre_v1") {
    workloads::Gadget g = workloads::buildSpectreV1();
    return backend::compile(g.module).program;
  }
  if (name == "nonspec_secret") {
    workloads::Gadget g = workloads::buildNonSpecSecret();
    return backend::compile(g.module).program;
  }
  if (name == "spectre_v2") return workloads::buildSpectreV2().program;
  throw Error("unknown gadget: " + name +
              " (spectre_v1, nonspec_secret, spectre_v2)");
}

} // namespace

int main(int argc, char** argv) {
  std::string file, kernel, gadget, policy = "unsafe", format = "text", out;
  std::string events;
  std::uint64_t cycles = 0;
  std::size_t bufferCap = std::size_t{1} << 16;
  bool dumpStats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kernel" && i + 1 < argc)
      kernel = argv[++i];
    else if (a == "--gadget" && i + 1 < argc)
      gadget = argv[++i];
    else if (a == "--policy" && i + 1 < argc)
      policy = argv[++i];
    else if (a == "--cycles" && i + 1 < argc)
      cycles = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (a == "--format" && i + 1 < argc)
      format = argv[++i];
    else if (a == "--out" && i + 1 < argc)
      out = argv[++i];
    else if (a == "--events" && i + 1 < argc)
      events = argv[++i];
    else if (a == "--buffer" && i + 1 < argc)
      bufferCap = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (a == "--stats")
      dumpStats = true;
    else if (!a.empty() && a[0] != '-')
      file = a;
    else
      usage();
  }
  const int sources =
      (!file.empty() ? 1 : 0) + (!kernel.empty() ? 1 : 0) +
      (!gadget.empty() ? 1 : 0);
  if (sources != 1) usage();
  if (format != "text" && format != "chrome" && format != "csv") usage();
  // Gadgets must run to completion for the attack window to appear;
  // kernels/asm default to a short prefix as before.
  if (cycles == 0) cycles = gadget.empty() ? 200 : 10'000'000;

  try {
    isa::Program prog;
    if (!kernel.empty()) {
      ir::Module mod = workloads::buildKernel(kernel);
      prog = backend::compile(mod).program;
    } else if (!gadget.empty()) {
      prog = buildGadget(gadget);
    } else {
      std::ifstream in(file);
      if (!in) throw Error("cannot open " + file);
      std::stringstream ss;
      ss << in.rdbuf();
      prog = isa::assemble(ss.str());
    }

    std::ofstream outFile;
    std::ostream* os = &std::cout;
    if (!out.empty()) {
      outFile.open(out);
      if (!outFile) throw Error("cannot open " + out + " for writing");
      os = &outFile;
    }

    StatSet stats;
    auto pol = secure::makePolicy(policy);
    uarch::PredecodedProgram pd(prog);
    uarch::O3Core core(pd, uarch::CoreConfig(), *pol, stats);

    trace::TraceBuffer buffer(bufferCap);
    core.setTraceBuffer(&buffer);
    if (format == "text") core.setTrace(os);

    while (!core.halted() && core.cycle() < cycles) core.tick();
    core.dumpMetrics();

    trace::ExportOptions exportOpts;
    exportOpts.program = &prog;
    if (!events.empty()) exportOpts.include = parseEventList(events);
    if (format == "chrome")
      trace::writeChromeTrace(*os, buffer, exportOpts);
    else if (format == "csv")
      trace::writeCsv(*os, buffer, exportOpts);

    std::cerr << "--- stopped at cycle " << core.cycle() << ", committed "
              << core.committedInsts() << " (policy " << policy << "); "
              << buffer.recorded() << " events recorded, " << buffer.dropped()
              << " dropped\n";
    if (dumpStats) stats.print(std::cerr);
    return 0;
  } catch (const Error& e) {
    std::cerr << "levioso-trace: " << e.what() << "\n";
    return 1;
  }
}
