// levioso-trace: per-event pipeline trace of a program's first N cycles.
//
//   levioso-trace --kernel mcf_chase --policy levioso --cycles 300
//   levioso-trace file.asm --policy spt --cycles 200
//
// Each line: "<cycle> <event> seq=<n> pc=0x<pc> <disasm>", where event is
// one of dispatch / issue / issue-load / issue-store / writeback / resolve
// / mispredict / squash / commit. Useful for watching exactly when a
// policy holds a transmitter back and when the squash wave hits.
#include <fstream>
#include <iostream>
#include <sstream>

#include "backend/compiler.hpp"
#include "isa/asmparser.hpp"
#include "secure/policies.hpp"
#include "support/stats.hpp"
#include "uarch/core.hpp"
#include "workloads/kernels.hpp"

using namespace lev;

namespace {
[[noreturn]] void usage() {
  std::cerr << "usage: levioso-trace (<file.asm>|--kernel <name>) "
               "[--policy P] [--cycles N]\n";
  std::exit(2);
}
} // namespace

int main(int argc, char** argv) {
  std::string file, kernel, policy = "unsafe";
  std::uint64_t cycles = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kernel" && i + 1 < argc)
      kernel = argv[++i];
    else if (a == "--policy" && i + 1 < argc)
      policy = argv[++i];
    else if (a == "--cycles" && i + 1 < argc)
      cycles = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (!a.empty() && a[0] != '-')
      file = a;
    else
      usage();
  }
  if (file.empty() == kernel.empty()) usage();

  try {
    isa::Program prog;
    if (!kernel.empty()) {
      ir::Module mod = workloads::buildKernel(kernel);
      prog = backend::compile(mod).program;
    } else {
      std::ifstream in(file);
      if (!in) throw Error("cannot open " + file);
      std::stringstream ss;
      ss << in.rdbuf();
      prog = isa::assemble(ss.str());
    }

    StatSet stats;
    auto pol = secure::makePolicy(policy);
    uarch::O3Core core(prog, uarch::CoreConfig(), *pol, stats);
    core.setTrace(&std::cout);
    while (!core.halted() && core.cycle() < cycles) core.tick();
    std::cerr << "--- stopped at cycle " << core.cycle() << ", committed "
              << core.committedInsts() << " (policy " << policy << ")\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "levioso-trace: " << e.what() << "\n";
    return 1;
  }
}
