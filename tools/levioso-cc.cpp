// levioso-cc: compile a textual IR module (or a built-in kernel) and print
// the annotated disassembly plus pass statistics.
//
//   levioso-cc file.ir            compile an IR file
//   levioso-cc --kernel mcf_chase compile a built-in kernel
//   options: --budget K | --no-hints | --no-memdep | --stats-only
#include <fstream>
#include <iostream>
#include <sstream>

#include "backend/compiler.hpp"
#include "ir/parser.hpp"
#include "isa/disasm.hpp"
#include "levioso/annotation.hpp"
#include "support/cliparse.hpp"
#include "support/strings.hpp"
#include "workloads/kernels.hpp"

using namespace lev;

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: levioso-cc (<file.ir> | --kernel <name>) "
               "[--budget K] [--no-hints] [--no-memdep] [--stats-only]\n"
               "kernels:";
  for (const auto& k : workloads::kernelNames()) std::cerr << " " << k;
  std::cerr << "\n";
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  std::string file, kernel;
  backend::CompileOptions opts;
  bool statsOnly = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kernel" && i + 1 < argc)
      kernel = argv[++i];
    else if (a == "--budget" && i + 1 < argc)
      opts.annotationBudget =
          requireIntArg("levioso-cc", "--budget", argv[++i], 0, 1024);
    else if (a == "--no-hints")
      opts.emitHints = false;
    else if (a == "--no-memdep")
      opts.depOptions.propagateThroughMemory = false;
    else if (a == "--stats-only")
      statsOnly = true;
    else if (!a.empty() && a[0] != '-')
      file = a;
    else
      usage();
  }
  if (file.empty() == kernel.empty()) usage();

  try {
    ir::Module mod = [&] {
      if (!kernel.empty()) return workloads::buildKernel(kernel);
      std::ifstream in(file);
      if (!in) throw Error("cannot open " + file);
      std::stringstream ss;
      ss << in.rdbuf();
      return ir::parseModule(ss.str());
    }();

    const backend::CompileResult res = backend::compile(mod, opts);
    if (!statsOnly) std::cout << isa::disasm(res.program);

    const auto& ds = res.depStats;
    std::cerr << "text: " << res.program.text.size() << " instructions, "
              << res.program.funcs.size() << " functions\n"
              << "deps: " << ds.instsWithNoDeps << "/" << ds.totalInsts
              << " IR insts dependency-free, avg set "
              << fmtF(static_cast<double>(ds.totalDepEntries) /
                          static_cast<double>(std::max<std::int64_t>(
                              1, ds.totalInsts)),
                      2)
              << ", max " << ds.maxSetSize << "\n"
              << "hints: " << res.encodeStats.encoded << " encoded, "
              << res.encodeStats.overflowed << " overflowed (budget "
              << opts.annotationBudget << ")\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "levioso-cc: " << e.what() << "\n";
    return 1;
  }
}
