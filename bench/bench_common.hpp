// Shared plumbing for the table/figure regenerators.
//
// Every bench binary accepts:
//   --scale N    workload scale factor (default 1)
//   --csv        emit CSV instead of an aligned console table
//   --kernels a,b,c   restrict the kernel set
#pragma once

#include <map>
#include <string>
#include <vector>

#include "backend/compiler.hpp"
#include "sim/simulation.hpp"
#include "support/table.hpp"
#include "uarch/core.hpp"
#include "workloads/kernels.hpp"

namespace lev::bench {

struct BenchArgs {
  int scale = 1;
  bool csv = false;
  std::vector<std::string> kernels; ///< empty = full suite
};

BenchArgs parseArgs(int argc, char** argv);

/// Kernel set selected by the args.
std::vector<std::string> selectedKernels(const BenchArgs& args);

/// Compile a kernel once (annotations at the given budget).
backend::CompileResult compileKernel(const std::string& name, int scale,
                                     int budget = 4,
                                     bool memoryProp = true);

/// Run a compiled program under a policy and return the summary.
sim::RunSummary run(const backend::CompileResult& compiled,
                    const std::string& policy,
                    const uarch::CoreConfig& cfg = uarch::CoreConfig());

/// Print a table in the format selected by the args, preceded by a title.
void emit(const BenchArgs& args, const std::string& title, const Table& t);

} // namespace lev::bench
