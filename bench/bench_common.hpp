// Shared plumbing for the table/figure regenerators.
//
// Every bench binary accepts:
//   --scale N         workload scale factor (default 1)
//   --csv             emit CSV instead of an aligned console table
//   --kernels a,b,c   restrict the kernel set
//   --jobs N          worker threads (default: LEVIOSO_JOBS, then ncpu)
//   --json FILE       write the runner's machine-readable report
//   --no-cache        skip the on-disk result cache (.levioso-cache/)
//   --manifest FILE   run-manifest path (default: derived from --json)
//   --no-manifest     skip the run manifest
//   -v / --quiet      raise / lower the log threshold (support/log.hpp)
//
// All simulation runs are routed through the runner subsystem
// (src/runner/): one bench builds its whole grid of points up front,
// runAll() executes them concurrently (deduplicated and cache-served),
// and the bench assembles its table from the in-order results.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "backend/compiler.hpp"
#include "runner/sweep.hpp"
#include "sim/simulation.hpp"
#include "support/table.hpp"
#include "uarch/core.hpp"
#include "workloads/kernels.hpp"

namespace lev::bench {

struct BenchArgs {
  int scale = 1;
  bool csv = false;
  int jobs = 0;         ///< 0 = auto (LEVIOSO_JOBS env, then hardware)
  bool useCache = true; ///< consult/populate .levioso-cache/
  bool manifest = true; ///< write a run manifest next to the report
  std::string jsonPath;     ///< non-empty: write the JSON report here
  std::string manifestPath; ///< non-empty: explicit manifest location
  std::vector<std::string> kernels; ///< empty = full suite
  std::string tool;                 ///< argv[0] basename (manifest id)
  std::vector<std::string> cmdline; ///< raw argv[1..] (manifest args)
};

BenchArgs parseArgs(int argc, char** argv);

/// Kernel set selected by the args.
std::vector<std::string> selectedKernels(const BenchArgs& args);

/// A grid point at this bench's scale (kernel + policy + optional config).
runner::JobSpec point(const BenchArgs& args, const std::string& kernel,
                      const std::string& policy,
                      const uarch::CoreConfig& cfg = uarch::CoreConfig());

/// Execute a batch of points through the shared thread pool + result
/// cache; returns records in `specs` order. Writes the JSON report when
/// --json was given. Throws on the first failed job (after all finish).
std::vector<runner::RunRecord> runAll(const BenchArgs& args,
                                      const std::vector<runner::JobSpec>& specs);

/// Compile a kernel once (annotations at the given budget).
backend::CompileResult compileKernel(const std::string& name, int scale,
                                     int budget = 4,
                                     bool memoryProp = true);

/// Compile many kernels concurrently; results in input order.
std::vector<backend::CompileResult>
compileAll(const BenchArgs& args,
           const std::vector<runner::JobSpec>& specs);

/// Run a compiled program under a policy and return the summary. Serial
/// escape hatch for callers that already hold a program (micro_speed).
sim::RunSummary run(const backend::CompileResult& compiled,
                    const std::string& policy,
                    const uarch::CoreConfig& cfg = uarch::CoreConfig());

/// Print a table in the format selected by the args, preceded by a title.
void emit(const BenchArgs& args, const std::string& title, const Table& t);

} // namespace lev::bench
