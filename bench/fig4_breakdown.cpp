// Figure 4 (reconstruction): where the overhead comes from — per policy,
// how many issue-slots were consumed re-trying delayed transmitters and how
// many loads were served invisibly (DoM).
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const std::vector<std::string> policies = {"fence", "dom", "stt", "spt",
                                             "levioso"};

  Table t({"benchmark", "policy", "overhead", "load-delay cycles",
           "exec-delay cycles", "invisible loads",
           "delay cycles / committed inst"});
  for (const std::string& kernel : bench::selectedKernels(args)) {
    const backend::CompileResult compiled =
        bench::compileKernel(kernel, args.scale);
    const sim::RunSummary base = bench::run(compiled, "unsafe");
    for (const auto& policy : policies) {
      sim::Simulation s(compiled.program, uarch::CoreConfig(), policy);
      if (s.run(4'000'000'000ull) != uarch::RunExit::Halted)
        throw SimError(kernel + ": cycle limit under " + policy);
      const auto& st = s.stats();
      const double over = sim::overhead(s.core().cycle(), base.cycles);
      const double perInst =
          static_cast<double>(st.get("policy.loadDelayCycles") +
                              st.get("policy.execDelayCycles")) /
          static_cast<double>(s.core().committedInsts());
      t.addRow({kernel, policy, fmtPct(over),
                std::to_string(st.get("policy.loadDelayCycles")),
                std::to_string(st.get("policy.execDelayCycles")),
                std::to_string(st.get("policy.invisibleLoads")),
                fmtF(perInst, 2)});
    }
    t.addSeparator();
  }
  bench::emit(args, "Figure 4: restriction-work breakdown per policy", t);
  return 0;
}
