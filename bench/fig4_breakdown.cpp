// Figure 4 (reconstruction): where the overhead comes from — per policy,
// which restriction rule consumed the delay cycles, how many distinct
// transmitters were actually held back, and for how long (from the
// delay-per-transmitter histogram the core now records on every run).
#include "bench_common.hpp"
#include "support/strings.hpp"
#include "trace/trace.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const std::vector<std::string> policies = {"fence", "dom", "stt", "spt",
                                             "levioso"};
  const std::vector<std::string> kernels = bench::selectedKernels(args);

  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels) {
    specs.push_back(bench::point(args, kernel, "unsafe"));
    for (const auto& policy : policies)
      specs.push_back(bench::point(args, kernel, policy));
  }
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  Table t({"benchmark", "policy", "overhead", "delay cycles", "top cause",
           "delayed transmitters", "mean delay", "max delay",
           "invisible loads"});
  std::size_t at = 0;
  for (const std::string& kernel : kernels) {
    const sim::RunSummary& base = records[at++].summary;
    for (const auto& policy : policies) {
      const runner::RunRecord& rec = records[at++];
      const auto& st = rec.stats;
      auto get = [&st](const std::string& name) {
        const auto it = st.find(name);
        return it == st.end() ? 0 : it->second;
      };
      const double over = sim::overhead(rec.summary.cycles, base.cycles);
      const std::int64_t delayCycles =
          get("policy.loadDelayCycles") + get("policy.execDelayCycles");
      // Which restriction rule accounts for the most delay decisions.
      std::string topCause = "-";
      std::int64_t topCauseCycles = 0;
      for (int c = 1; c < trace::kNumDelayCauses; ++c) {
        const auto cause = static_cast<trace::DelayCause>(c);
        const std::int64_t cycles = get("policy.delayCycles." +
                                        std::string(delayCauseName(cause)));
        if (cycles > topCauseCycles) {
          topCauseCycles = cycles;
          topCause = delayCauseName(cause);
        }
      }
      const std::int64_t delayed = get("hist.delay.transmitter.count");
      const std::int64_t delaySum = get("hist.delay.transmitter.sum");
      const double meanDelay =
          delayed == 0 ? 0.0
                       : static_cast<double>(delaySum) /
                             static_cast<double>(delayed);
      t.addRow({kernel, policy, fmtPct(over), std::to_string(delayCycles),
                topCause, std::to_string(delayed), fmtF(meanDelay, 1),
                std::to_string(get("hist.delay.transmitter.max")),
                std::to_string(get("policy.invisibleLoads"))});
    }
    t.addSeparator();
  }
  bench::emit(args, "Figure 4: restriction-work breakdown per policy", t);
  return 0;
}
