// Figure 4 (reconstruction): where the overhead comes from — per policy,
// how many issue-slots were consumed re-trying delayed transmitters and how
// many loads were served invisibly (DoM).
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const std::vector<std::string> policies = {"fence", "dom", "stt", "spt",
                                             "levioso"};
  const std::vector<std::string> kernels = bench::selectedKernels(args);

  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels) {
    specs.push_back(bench::point(args, kernel, "unsafe"));
    for (const auto& policy : policies)
      specs.push_back(bench::point(args, kernel, policy));
  }
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  Table t({"benchmark", "policy", "overhead", "load-delay cycles",
           "exec-delay cycles", "invisible loads",
           "delay cycles / committed inst"});
  std::size_t at = 0;
  for (const std::string& kernel : kernels) {
    const sim::RunSummary& base = records[at++].summary;
    for (const auto& policy : policies) {
      const runner::RunRecord& rec = records[at++];
      const auto& st = rec.stats;
      auto get = [&st](const char* name) {
        const auto it = st.find(name);
        return it == st.end() ? 0 : it->second;
      };
      const double over = sim::overhead(rec.summary.cycles, base.cycles);
      const double perInst =
          static_cast<double>(get("policy.loadDelayCycles") +
                              get("policy.execDelayCycles")) /
          static_cast<double>(rec.summary.insts);
      t.addRow({kernel, policy, fmtPct(over),
                std::to_string(get("policy.loadDelayCycles")),
                std::to_string(get("policy.execDelayCycles")),
                std::to_string(get("policy.invisibleLoads")),
                fmtF(perInst, 2)});
    }
    t.addSeparator();
  }
  bench::emit(args, "Figure 4: restriction-work breakdown per policy", t);
  return 0;
}
