// Figure 9 (extension): better prediction helps the defenses too.
//
// Mispredictions bound how long speculation sources stay unresolved (and
// how much transient work is wasted), so a stronger predictor (TAGE-lite
// vs gshare) lowers both the baseline cycle count and every defense's
// overhead — without changing the ordering between schemes.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parseArgs(argc, argv);
  if (args.kernels.empty())
    args.kernels = {"gobmk_board", "gcc_branchy", "leela_search", "x264_sad"};
  const std::vector<std::string> kernels = bench::selectedKernels(args);
  const std::vector<uarch::PredictorKind> kinds = {
      uarch::PredictorKind::Gshare, uarch::PredictorKind::Tage};

  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels)
    for (const auto kind : kinds) {
      uarch::CoreConfig cfg;
      cfg.bp.kind = kind;
      for (const char* policy : {"unsafe", "spt", "levioso"})
        specs.push_back(bench::point(args, kernel, policy, cfg));
    }
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  Table t({"benchmark", "predictor", "unsafe cycles", "mispredict rate",
           "spt overhead", "levioso overhead"});
  std::size_t at = 0;
  for (const std::string& kernel : kernels) {
    for (const auto kind : kinds) {
      const runner::RunRecord& base = records[at++];
      const sim::RunSummary& spt = records[at++].summary;
      const sim::RunSummary& lev = records[at++].summary;
      const auto& st = base.stats;
      auto get = [&st](const char* name) {
        const auto it = st.find(name);
        return static_cast<double>(it == st.end() ? 0 : it->second);
      };
      const double branches =
          get("bp.resolvedTaken") + get("bp.resolvedNotTaken");
      const double misRate = get("bp.mispredicts") / branches;
      t.addRow({kernel,
                kind == uarch::PredictorKind::Tage ? "tage-lite" : "gshare",
                std::to_string(base.summary.cycles), fmtPct(misRate),
                fmtPct(sim::overhead(spt.cycles, base.summary.cycles)),
                fmtPct(sim::overhead(lev.cycles, base.summary.cycles))});
    }
    t.addSeparator();
  }
  bench::emit(args, "Figure 9: branch predictor x defenses", t);
  return 0;
}
