// Figure 9 (extension): better prediction helps the defenses too.
//
// Mispredictions bound how long speculation sources stay unresolved (and
// how much transient work is wasted), so a stronger predictor (TAGE-lite
// vs gshare) lowers both the baseline cycle count and every defense's
// overhead — without changing the ordering between schemes.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parseArgs(argc, argv);
  if (args.kernels.empty())
    args.kernels = {"gobmk_board", "gcc_branchy", "leela_search", "x264_sad"};

  Table t({"benchmark", "predictor", "unsafe cycles", "mispredict rate",
           "spt overhead", "levioso overhead"});
  for (const std::string& kernel : bench::selectedKernels(args)) {
    const backend::CompileResult compiled =
        bench::compileKernel(kernel, args.scale);
    for (const auto kind :
         {uarch::PredictorKind::Gshare, uarch::PredictorKind::Tage}) {
      uarch::CoreConfig cfg;
      cfg.bp.kind = kind;
      sim::Simulation base(compiled.program, cfg, "unsafe");
      if (base.run(4'000'000'000ull) != uarch::RunExit::Halted)
        throw SimError(kernel + ": cycle limit");
      const double branches =
          static_cast<double>(base.stats().get("bp.resolvedTaken") +
                              base.stats().get("bp.resolvedNotTaken"));
      const double misRate =
          static_cast<double>(base.stats().get("bp.mispredicts")) / branches;
      const sim::RunSummary spt = bench::run(compiled, "spt", cfg);
      const sim::RunSummary lev = bench::run(compiled, "levioso", cfg);
      t.addRow({kernel,
                kind == uarch::PredictorKind::Tage ? "tage-lite" : "gshare",
                std::to_string(base.core().cycle()), fmtPct(misRate),
                fmtPct(sim::overhead(spt.cycles, base.core().cycle())),
                fmtPct(sim::overhead(lev.cycles, base.core().cycle()))});
    }
    t.addSeparator();
  }
  bench::emit(args, "Figure 9: branch predictor x defenses", t);
  return 0;
}
