// Table 2 (reconstruction): simulated-core configuration, in the style of
// the gem5 setup table secure-speculation papers print.
#include "bench_common.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const uarch::CoreConfig c;

  auto kib = [](std::uint64_t b) { return std::to_string(b / 1024) + " KiB"; };

  Table t({"parameter", "value"});
  t.addRow({"pipeline width (fetch/rename/issue/commit)",
            std::to_string(c.fetchWidth) + "/" + std::to_string(c.renameWidth) +
                "/" + std::to_string(c.issueWidth) + "/" +
                std::to_string(c.commitWidth)});
  t.addRow({"ROB / IQ / LQ / SQ",
            std::to_string(c.robSize) + " / " + std::to_string(c.iqSize) +
                " / " + std::to_string(c.lqSize) + " / " +
                std::to_string(c.sqSize)});
  t.addRow({"functional units",
            std::to_string(c.intAlus) + " ALU, " + std::to_string(c.mulUnits) +
                " MUL (lat " + std::to_string(c.mulLat) + "), " +
                std::to_string(c.divUnits) + " DIV (lat " +
                std::to_string(c.divLat) + ", unpipelined), " +
                std::to_string(c.memPorts) + " mem ports"});
  t.addRow({"front end", std::to_string(c.frontendDepth) +
                             "-cycle depth, redirect penalty " +
                             std::to_string(c.redirectPenalty)});
  t.addRow({"branch predictor",
            "gshare " + std::to_string(c.bp.historyBits) + "-bit history, " +
                std::to_string(1 << c.bp.tableBits) + "-entry table, " +
                std::to_string(c.bp.btbEntries) + "-entry BTB, " +
                std::to_string(c.bp.rasEntries) + "-entry RAS"});
  t.addRow({"L1I", kib(c.mem.l1i.sizeBytes) + ", " +
                       std::to_string(c.mem.l1i.assoc) + "-way, lat " +
                       std::to_string(c.mem.l1i.hitLatency)});
  t.addRow({"L1D", kib(c.mem.l1d.sizeBytes) + ", " +
                       std::to_string(c.mem.l1d.assoc) + "-way, lat " +
                       std::to_string(c.mem.l1d.hitLatency)});
  t.addRow({"L2", kib(c.mem.l2.sizeBytes) + ", " +
                      std::to_string(c.mem.l2.assoc) + "-way, lat " +
                      std::to_string(c.mem.l2.hitLatency)});
  t.addRow({"DRAM latency", std::to_string(c.mem.memLatency) + " cycles"});
  t.addRow({"MSHRs (outstanding D-misses)", std::to_string(c.mshrs)});
  t.addRow({"store-to-load forward latency",
            std::to_string(c.storeForwardLat) + " cycles"});
  bench::emit(args, "Table 2: simulated core configuration", t);
  return 0;
}
