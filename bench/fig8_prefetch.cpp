// Figure 8 (extension): interaction of the stride prefetcher with the
// defenses.
//
// Prefetching narrows the absolute gap on streaming code (fewer demand
// misses means shorter branch-resolution stalls to protect against) but
// does not change the ordering between schemes. The core never trains or
// triggers the prefetcher for policy-delayed or invisibly-served loads, so
// enabling it does not re-open the transient channel the defenses close —
// re-checked here by running the attack suite with prefetching on.
#include "bench_common.hpp"
#include "security/attack.hpp"
#include "support/strings.hpp"
#include "workloads/gadgets.hpp"

using namespace lev;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parseArgs(argc, argv);
  if (args.kernels.empty())
    args.kernels = {"lbm_stream", "x264_sad", "mcf_chase", "gcc_branchy"};
  const std::vector<std::string> kernels = bench::selectedKernels(args);

  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels)
    for (const bool pf : {false, true}) {
      uarch::CoreConfig cfg;
      cfg.prefetch.enabled = pf;
      for (const char* policy : {"unsafe", "spt", "levioso"})
        specs.push_back(bench::point(args, kernel, policy, cfg));
    }
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  Table t({"benchmark", "prefetch", "unsafe cycles", "spt", "levioso"});
  std::size_t at = 0;
  for (const std::string& kernel : kernels) {
    for (const bool pf : {false, true}) {
      const sim::RunSummary& base = records[at++].summary;
      const sim::RunSummary& spt = records[at++].summary;
      const sim::RunSummary& lev = records[at++].summary;
      t.addRow({kernel, pf ? "on" : "off", std::to_string(base.cycles),
                fmtPct(sim::overhead(spt.cycles, base.cycles)),
                fmtPct(sim::overhead(lev.cycles, base.cycles))});
    }
    t.addSeparator();
  }
  bench::emit(args, "Figure 8: stride prefetcher x defenses", t);

  // Security must be unaffected by prefetching. Attack runs are cheap;
  // they stay serial (the attack harness inspects cache tag state and has
  // no RunSummary to cache).
  Table s({"gadget", "policy", "prefetch on -> outcome"});
  uarch::CoreConfig pfCfg;
  pfCfg.prefetch.enabled = true;
  for (const std::string policy : {"unsafe", "levioso"}) {
    workloads::Gadget g1 = workloads::buildSpectreV1(0);
    s.addRow({"spectre_v1", policy,
              security::runAttack(g1, policy, pfCfg).leaked ? "LEAKED"
                                                            : "blocked"});
    workloads::Gadget g2 = workloads::buildNonSpecSecret(0);
    s.addRow({"nonspec_secret", policy,
              security::runAttack(g2, policy, pfCfg).leaked ? "LEAKED"
                                                            : "blocked"});
  }
  bench::emit(args, "Figure 8b: attack outcomes with prefetching enabled", s);
  return 0;
}
