// Figure 3 (reconstruction) — THE headline result.
//
// Execution-time overhead of every defense, normalized to the unsafe
// baseline, per benchmark plus geomean. The paper's abstract reports the
// two prior comprehensive defenses at 51% and 43% and Levioso at 23%; the
// reproduction targets the same ordering and rough magnitudes:
//
//   fence  >>  spt  >  stt  >  levioso  >  levioso-lite  >=  unsafe(0%)
//
// Absolute percentages depend on the substituted core/workloads; the shape
// is what EXPERIMENTS.md tracks.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const std::vector<std::string> policies = {"fence", "dom",     "stt",
                                             "spt",   "levioso", "levioso-lite"};
  const std::vector<std::string> kernels = bench::selectedKernels(args);

  // The whole kernel x policy grid runs as one concurrent sweep.
  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels) {
    specs.push_back(bench::point(args, kernel, "unsafe"));
    for (const auto& policy : policies)
      specs.push_back(bench::point(args, kernel, policy));
  }
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  std::vector<std::string> header = {"benchmark", "unsafe cycles"};
  for (const auto& p : policies) header.push_back(p);
  Table t(header);

  std::map<std::string, std::vector<double>> slowdowns;
  std::size_t at = 0;
  for (const std::string& kernel : kernels) {
    const sim::RunSummary& base = records[at++].summary;
    std::vector<std::string> row = {kernel, std::to_string(base.cycles)};
    for (const auto& policy : policies) {
      const sim::RunSummary& s = records[at++].summary;
      const double slowdown =
          static_cast<double>(s.cycles) / static_cast<double>(base.cycles);
      slowdowns[policy].push_back(slowdown);
      row.push_back(fmtPct(slowdown - 1.0));
    }
    t.addRow(row);
  }
  t.addSeparator();
  std::vector<std::string> geo = {"geomean", "-"};
  for (const auto& policy : policies)
    geo.push_back(fmtPct(geomean(slowdowns[policy]) - 1.0));
  t.addRow(geo);

  bench::emit(args,
              "Figure 3: performance overhead vs the unsafe baseline "
              "(paper: prior defenses 51%/43%, Levioso 23%)",
              t);
  return 0;
}
