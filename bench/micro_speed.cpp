// Micro-benchmarks (google-benchmark): throughput of the simulator and the
// compiler passes themselves. Not a paper figure — tooling health numbers
// so regressions in the infrastructure are visible.
#include <benchmark/benchmark.h>

#include "analysis/cfg.hpp"
#include "analysis/domtree.hpp"
#include "bench_common.hpp"
#include "levioso/branchdeps.hpp"
#include "secure/policies.hpp"
#include "support/rng.hpp"
#include "uarch/cache.hpp"
#include "uarch/funcsim.hpp"

using namespace lev;

namespace {

const backend::CompileResult& compiledKernel() {
  static const backend::CompileResult kCompiled =
      bench::compileKernel("gcc_branchy", 1);
  return kCompiled;
}

void BM_O3CoreKIPS(benchmark::State& state) {
  const std::string policy =
      secure::policyNames()[static_cast<std::size_t>(state.range(0))];
  std::uint64_t insts = 0;
  for (auto _ : state) {
    sim::Simulation s(compiledKernel().program, uarch::CoreConfig(), policy);
    s.run(4'000'000'000ull);
    insts += s.core().committedInsts();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(insts));
  state.SetLabel(policy);
}
BENCHMARK(BM_O3CoreKIPS)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

void BM_FuncSimKIPS(benchmark::State& state) {
  std::uint64_t insts = 0;
  for (auto _ : state) {
    uarch::FuncSim sim(compiledKernel().program);
    insts += sim.run(4'000'000'000ull);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_FuncSimKIPS)->Unit(benchmark::kMillisecond);

void BM_LeviosoAnalysis(benchmark::State& state) {
  ir::Module mod =
      workloads::buildKernel(workloads::kernelNames()[static_cast<std::size_t>(
          state.range(0))]);
  for (auto& fn : mod.functions()) fn->renumber();
  const ir::Function& fn = *mod.findFunction("main");
  for (auto _ : state) {
    levioso::BranchDepAnalysis analysis(mod, fn);
    benchmark::DoNotOptimize(analysis.numBranches());
  }
  state.SetLabel(workloads::kernelNames()[static_cast<std::size_t>(state.range(0))]);
}
BENCHMARK(BM_LeviosoAnalysis)->DenseRange(0, 11);

void BM_Compile(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ir::Module mod = workloads::buildKernel("omnetpp_queue");
    state.ResumeTiming();
    backend::CompileResult res = backend::compile(mod);
    benchmark::DoNotOptimize(res.program.text.size());
  }
}
BENCHMARK(BM_Compile)->Unit(benchmark::kMicrosecond);

void BM_CacheAccess(benchmark::State& state) {
  StatSet stats;
  uarch::Cache cache({"bench", 32 * 1024, 8, 64, 3}, stats);
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.access(rng.next() % (1 << 20)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_PredictorLookup(benchmark::State& state) {
  StatSet stats;
  uarch::BranchPredictor bp(uarch::PredictorConfig{}, stats);
  Rng rng(9);
  for (auto _ : state) {
    const std::uint64_t pc = 0x1000 + (rng.next() % 512) * 8;
    const std::uint64_t h = bp.history();
    const bool taken = bp.predictCond(pc);
    bp.updateCond(pc, taken, h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PredictorLookup);

} // namespace

BENCHMARK_MAIN();
