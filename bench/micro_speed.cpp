// Micro-benchmarks (google-benchmark): throughput of the simulator and the
// compiler passes themselves. Not a paper figure — tooling health numbers
// so regressions in the infrastructure are visible.
//
// `--speed-json FILE` switches to the perf-trajectory mode instead: it
// measures host-side simulator throughput (simulated instructions per wall
// second, MIPS) for every policy of every selected kernel and writes a
// machine-readable report. `--kernel a,b,c` selects the kernels (strict:
// unknown names exit 2; default gcc_branchy).
// `bench/baselines/BENCH_speed.json` holds the committed baseline; CI
// regenerates the report on every push (docs/PERF.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "analysis/cfg.hpp"
#include "analysis/domtree.hpp"
#include "bench_common.hpp"
#include "levioso/branchdeps.hpp"
#include "runner/manifest.hpp"
#include "secure/policies.hpp"
#include "support/cliparse.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "uarch/cache.hpp"
#include "uarch/funcsim.hpp"
#include "uarch/predecode.hpp"

using namespace lev;

namespace {

/// One kernel compiled once and predecoded once; every measurement run of
/// every policy shares the same read-only PredecodedProgram — the same
/// sharing discipline the Sweep uses (docs/PERF.md).
struct KernelBundle {
  backend::CompileResult compiled;
  uarch::PredecodedProgram pd;
  explicit KernelBundle(const std::string& name)
      : compiled(bench::compileKernel(name, 1)), pd(compiled.program) {}
};

const KernelBundle& kernelBundle(const std::string& name) {
  static std::map<std::string, std::unique_ptr<KernelBundle>> kCache;
  std::unique_ptr<KernelBundle>& slot = kCache[name];
  if (!slot) slot = std::make_unique<KernelBundle>(name);
  return *slot;
}

const backend::CompileResult& compiledKernel() {
  return kernelBundle("gcc_branchy").compiled;
}

void BM_O3CoreKIPS(benchmark::State& state) {
  const std::string policy =
      secure::policyNames()[static_cast<std::size_t>(state.range(0))];
  std::uint64_t insts = 0;
  for (auto _ : state) {
    sim::Simulation s(compiledKernel().program, uarch::CoreConfig(), policy);
    s.run(4'000'000'000ull);
    insts += s.core().committedInsts();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(insts));
  state.SetLabel(policy);
}
BENCHMARK(BM_O3CoreKIPS)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

void BM_FuncSimKIPS(benchmark::State& state) {
  std::uint64_t insts = 0;
  for (auto _ : state) {
    uarch::FuncSim sim(compiledKernel().program);
    insts += sim.run(4'000'000'000ull);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_FuncSimKIPS)->Unit(benchmark::kMillisecond);

void BM_LeviosoAnalysis(benchmark::State& state) {
  ir::Module mod =
      workloads::buildKernel(workloads::kernelNames()[static_cast<std::size_t>(
          state.range(0))]);
  for (auto& fn : mod.functions()) fn->renumber();
  const ir::Function& fn = *mod.findFunction("main");
  for (auto _ : state) {
    levioso::BranchDepAnalysis analysis(mod, fn);
    benchmark::DoNotOptimize(analysis.numBranches());
  }
  state.SetLabel(workloads::kernelNames()[static_cast<std::size_t>(state.range(0))]);
}
BENCHMARK(BM_LeviosoAnalysis)->DenseRange(0, 11);

void BM_Compile(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ir::Module mod = workloads::buildKernel("omnetpp_queue");
    state.ResumeTiming();
    backend::CompileResult res = backend::compile(mod);
    benchmark::DoNotOptimize(res.program.text.size());
  }
}
BENCHMARK(BM_Compile)->Unit(benchmark::kMicrosecond);

void BM_CacheAccess(benchmark::State& state) {
  StatSet stats;
  uarch::Cache cache({"bench", 32 * 1024, 8, 64, 3}, stats);
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(cache.access(rng.next() % (1 << 20)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_PredictorLookup(benchmark::State& state) {
  StatSet stats;
  uarch::BranchPredictor bp(uarch::PredictorConfig{}, stats);
  Rng rng(9);
  for (auto _ : state) {
    const std::uint64_t pc = 0x1000 + (rng.next() % 512) * 8;
    const std::uint64_t h = bp.history();
    const bool taken = bp.predictCond(pc);
    bp.updateCond(pc, taken, h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PredictorLookup);

// ------------------------------------------------------- speed-json mode --

/// Wall-clock throughput of one policy on the reference kernel: repeat
/// whole simulations until `minSeconds` of wall time accumulate (3 runs
/// minimum so one noisy run cannot dominate).
struct SpeedSample {
  std::string policy;
  int runs = 0;
  std::uint64_t simInsts = 0;
  std::uint64_t simCycles = 0;
  double wallSeconds = 0.0;
};

SpeedSample measurePolicy(const KernelBundle& k, const std::string& policy,
                          double minSeconds) {
  using clock = std::chrono::steady_clock;
  SpeedSample s;
  s.policy = policy;
  { // Warm-up run: page in code/data, settle the allocator.
    sim::Simulation warm(k.pd, uarch::CoreConfig(), policy);
    warm.run(4'000'000'000ull);
  }
  while (s.runs < 3 || s.wallSeconds < minSeconds) {
    const auto t0 = clock::now();
    sim::Simulation run(k.pd, uarch::CoreConfig(), policy);
    run.run(4'000'000'000ull);
    const auto t1 = clock::now();
    s.wallSeconds += std::chrono::duration<double>(t1 - t0).count();
    s.simInsts += run.core().committedInsts();
    s.simCycles += run.core().cycle();
    ++s.runs;
  }
  return s;
}

int speedJsonMain(const std::string& path, double minSeconds,
                  const std::vector<std::string>& kernels,
                  const std::vector<std::string>& cmdline) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "micro_speed: cannot write " << path << "\n";
    return 1;
  }
  const auto epoch = std::chrono::steady_clock::now();
  const auto sinceEpochMicros = [&epoch]() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  };
  // Hand-built manifest: micro_speed times policies serially instead of
  // going through Sweep, so each policy measurement becomes one host span.
  runner::Manifest manifest;
  manifest.tool = "micro_speed";
  manifest.args = cmdline;
  manifest.reportPath = path;
  manifest.threads = 1;

  std::string kernelList;
  for (const std::string& k : kernels) {
    if (!kernelList.empty()) kernelList += ',';
    kernelList += k;
  }
  JsonWriter w(out);
  w.beginObject();
  w.field("bench", "micro_speed");
  w.field("kernel", kernelList);
#ifdef NDEBUG
  w.field("build", "release");
#else
  w.field("build", "debug");
#endif
  w.field("minSecondsPerPolicy", minSeconds);
  w.key("policies").beginArray();
  for (const std::string& kernel : kernels) {
    const KernelBundle& bundle = kernelBundle(kernel);
    for (const std::string& policy : secure::policyNames()) {
      trace::HostSpan span;
      span.label = kernel + "/" + policy;
      span.phase = "measure";
      span.worker = 0;
      span.queuedMicros = span.startMicros = sinceEpochMicros();
      const SpeedSample s = measurePolicy(bundle, policy, minSeconds);
      span.endMicros = sinceEpochMicros();
      manifest.timings.push_back(std::move(span));
      const double mips =
          static_cast<double>(s.simInsts) / s.wallSeconds / 1e6;
      const double mcps =
          static_cast<double>(s.simCycles) / s.wallSeconds / 1e6;
      w.beginObject();
      w.field("kernel", kernel);
      w.field("policy", s.policy);
      w.field("runs", s.runs);
      w.field("simInsts", s.simInsts);
      w.field("simCycles", s.simCycles);
      w.field("wallSeconds", s.wallSeconds);
      w.field("hostMips", mips);
      w.field("hostMcps", mcps);
      w.endObject();
      std::cerr << "  " << kernel << "/" << s.policy << ": " << mips
                << " MIPS (" << mcps << " Mcycles/s, " << s.runs
                << " runs)\n";
    }
  }
  w.endArray();
  w.endObject();
  out << "\n";
  std::cerr << "micro_speed: wrote " << path << "\n";
  manifest.wallMicros =
      static_cast<std::uint64_t>(sinceEpochMicros());
  runner::writeManifestFile(runner::manifestPathFor(path), manifest);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  std::string speedJson;
  double minSeconds = 1.0;
  std::vector<std::string> kernels = {"gcc_branchy"};
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--speed-json") == 0 && i + 1 < argc) {
      speedJson = argv[++i];
    } else if (std::strcmp(argv[i], "--speed-secs") == 0 && i + 1 < argc) {
      minSeconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
      kernels.clear();
      for (auto part : split(argv[++i], ','))
        kernels.push_back(requireChoice("micro_speed", "--kernel",
                                        std::string(trim(part)),
                                        workloads::kernelNames()));
      if (kernels.empty()) {
        std::cerr << "micro_speed: --kernel needs at least one name\n";
        return 2;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!speedJson.empty())
    return speedJsonMain(speedJson, minSeconds, kernels,
                         std::vector<std::string>(argv + 1, argv + argc));

  int bargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
