// Table 4 (reconstruction): workload characterization.
//
// The per-benchmark microarchitectural profile on the unsafe core — the
// table secure-speculation papers use to explain *why* each benchmark
// responds to each defense the way it does: overhead tracks branch
// misprediction rate and memory-boundedness (branch-resolution latency),
// and Levioso's win tracks the gap between loads-under-branches and
// loads-under-true-dependees (fig1).
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);

  Table t({"benchmark", "dyn insts", "IPC", "loads", "stores", "branches",
           "mispredict rate", "L1D MPKI", "L2 MPKI", "squashed insts/kinst"});
  for (const std::string& kernel : bench::selectedKernels(args)) {
    const backend::CompileResult compiled =
        bench::compileKernel(kernel, args.scale);
    sim::Simulation s(compiled.program, uarch::CoreConfig(), "unsafe");
    if (s.run(4'000'000'000ull) != uarch::RunExit::Halted)
      throw SimError(kernel + ": cycle limit");
    const auto& st = s.stats();
    const double insts = static_cast<double>(st.get("commit.insts"));
    const double kinsts = insts / 1000.0;
    const double loads = static_cast<double>(st.get("commit.loads"));
    const double stores = static_cast<double>(st.get("commit.stores"));
    const double branches = static_cast<double>(
        st.get("bp.resolvedTaken") + st.get("bp.resolvedNotTaken"));
    const double mispredicts = static_cast<double>(st.get("bp.mispredicts"));
    const double l1dMisses = static_cast<double>(st.get("l1d.misses"));
    const double l2Misses = static_cast<double>(st.get("l2.misses"));
    const double squashed = static_cast<double>(st.get("squash.insts"));
    t.addRow({kernel, std::to_string(static_cast<long long>(insts)),
              fmtF(insts / static_cast<double>(s.core().cycle()), 2),
              fmtPct(loads / insts), fmtPct(stores / insts),
              fmtPct(branches / insts),
              branches > 0 ? fmtPct(mispredicts / branches) : "-",
              fmtF(l1dMisses / kinsts, 1), fmtF(l2Misses / kinsts, 1),
              fmtF(squashed / kinsts, 1)});
  }
  bench::emit(args, "Table 4: workload characterization (unsafe core)", t);
  return 0;
}
