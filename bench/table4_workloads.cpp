// Table 4 (reconstruction): workload characterization.
//
// The per-benchmark microarchitectural profile on the unsafe core — the
// table secure-speculation papers use to explain *why* each benchmark
// responds to each defense the way it does: overhead tracks branch
// misprediction rate and memory-boundedness (branch-resolution latency),
// and Levioso's win tracks the gap between loads-under-branches and
// loads-under-true-dependees (fig1).
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const std::vector<std::string> kernels = bench::selectedKernels(args);

  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels)
    specs.push_back(bench::point(args, kernel, "unsafe"));
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  Table t({"benchmark", "dyn insts", "IPC", "loads", "stores", "branches",
           "mispredict rate", "L1D MPKI", "L2 MPKI", "squashed insts/kinst"});
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const runner::RunRecord& rec = records[i];
    const auto& st = rec.stats;
    auto get = [&st](const char* name) {
      const auto it = st.find(name);
      return static_cast<double>(it == st.end() ? 0 : it->second);
    };
    const double insts = get("commit.insts");
    const double kinsts = insts / 1000.0;
    const double loads = get("commit.loads");
    const double stores = get("commit.stores");
    const double branches =
        get("bp.resolvedTaken") + get("bp.resolvedNotTaken");
    const double mispredicts = get("bp.mispredicts");
    const double l1dMisses = get("l1d.misses");
    const double l2Misses = get("l2.misses");
    const double squashed = get("squash.insts");
    t.addRow({kernels[i], std::to_string(static_cast<long long>(insts)),
              fmtF(insts / static_cast<double>(rec.summary.cycles), 2),
              fmtPct(loads / insts), fmtPct(stores / insts),
              fmtPct(branches / insts),
              branches > 0 ? fmtPct(mispredicts / branches) : "-",
              fmtF(l1dMisses / kinsts, 1), fmtF(l2Misses / kinsts, 1),
              fmtF(squashed / kinsts, 1)});
  }
  bench::emit(args, "Table 4: workload characterization (unsafe core)", t);
  return 0;
}
