#include "bench_common.hpp"

#include <iostream>

#include "support/strings.hpp"

namespace lev::bench {

BenchArgs parseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--csv") {
      args.csv = true;
    } else if (a == "--scale" && i + 1 < argc) {
      args.scale = std::max(1, std::atoi(argv[++i]));
    } else if (a == "--kernels" && i + 1 < argc) {
      for (auto part : split(argv[++i], ','))
        args.kernels.emplace_back(trim(part));
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--scale N] [--csv] [--kernels a,b,c]\n";
      std::exit(2);
    }
  }
  return args;
}

std::vector<std::string> selectedKernels(const BenchArgs& args) {
  return args.kernels.empty() ? workloads::kernelNames() : args.kernels;
}

backend::CompileResult compileKernel(const std::string& name, int scale,
                                     int budget, bool memoryProp) {
  ir::Module mod = workloads::buildKernel(name, scale);
  backend::CompileOptions opts;
  opts.annotationBudget = budget;
  opts.depOptions.propagateThroughMemory = memoryProp;
  return backend::compile(mod, opts);
}

sim::RunSummary run(const backend::CompileResult& compiled,
                    const std::string& policy, const uarch::CoreConfig& cfg) {
  return sim::runOnce(compiled.program, cfg, policy, 4'000'000'000ull);
}

void emit(const BenchArgs& args, const std::string& title, const Table& t) {
  std::cout << "== " << title << " ==\n";
  if (args.csv)
    t.printCsv(std::cout);
  else
    t.print(std::cout);
  std::cout << "\n";
}

} // namespace lev::bench
