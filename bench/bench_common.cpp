#include "bench_common.hpp"

#include <fstream>
#include <iostream>

#include "runner/manifest.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace lev::bench {

BenchArgs parseArgs(int argc, char** argv) {
  BenchArgs args;
  args.tool = argc > 0 ? argv[0] : "bench";
  if (const auto slash = args.tool.find_last_of('/');
      slash != std::string::npos)
    args.tool = args.tool.substr(slash + 1);
  args.cmdline.assign(argv + std::min(argc, 1), argv + argc);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--csv") {
      args.csv = true;
    } else if (a == "--no-cache") {
      args.useCache = false;
    } else if (a == "--no-manifest") {
      args.manifest = false;
    } else if (a == "-v") {
      log::setThreshold(log::Level::Debug);
    } else if (a == "--quiet") {
      log::setThreshold(log::Level::Warn);
    } else if (a == "--scale" && i + 1 < argc) {
      args.scale = std::max(1, std::atoi(argv[++i]));
    } else if (a == "--jobs" && i + 1 < argc) {
      args.jobs = std::max(1, std::atoi(argv[++i]));
    } else if (a == "--json" && i + 1 < argc) {
      args.jsonPath = argv[++i];
    } else if (a == "--manifest" && i + 1 < argc) {
      args.manifestPath = argv[++i];
    } else if (a == "--kernels" && i + 1 < argc) {
      for (auto part : split(argv[++i], ','))
        args.kernels.emplace_back(trim(part));
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--scale N] [--csv] [--kernels a,b,c] [--jobs N] "
                   "[--json FILE] [--no-cache] [--manifest FILE] "
                   "[--no-manifest] [-v] [--quiet]\n";
      std::exit(2);
    }
  }
  return args;
}

std::vector<std::string> selectedKernels(const BenchArgs& args) {
  return args.kernels.empty() ? workloads::kernelNames() : args.kernels;
}

runner::JobSpec point(const BenchArgs& args, const std::string& kernel,
                      const std::string& policy,
                      const uarch::CoreConfig& cfg) {
  runner::JobSpec spec;
  spec.kernel = kernel;
  spec.scale = args.scale;
  spec.policy = policy;
  spec.cfg = cfg;
  return spec;
}

std::vector<runner::RunRecord> runAll(
    const BenchArgs& args, const std::vector<runner::JobSpec>& specs) {
  runner::ResultCache cache({runner::defaultCacheDir(),
                             runner::kCodeVersionSalt});
  runner::Sweep::Options opts;
  opts.jobs = args.jobs;
  opts.cache = args.useCache ? &cache : nullptr;
  runner::Sweep sweep(opts);
  for (const runner::JobSpec& spec : specs) sweep.add(spec);
  std::vector<runner::RunRecord> records = sweep.run();
  const auto& c = sweep.counters();
  LEV_LOG_INFO(args.tool.c_str(), "batch finished",
               {{"points", c.points},
                {"cacheHits", c.cacheHits},
                {"simulated", c.simulated},
                {"wallMicros", sweep.wallMicros()}});
  if (!args.jsonPath.empty()) {
    std::ofstream out(args.jsonPath);
    if (!out) {
      std::cerr << "cannot write " << args.jsonPath << "\n";
      std::exit(1);
    }
    sweep.writeJson(out);
  }
  // Manifests go next to the report; a bench invoked without --json (13
  // benches share one cwd under run_benches.sh) writes one only when an
  // explicit --manifest path was given.
  if (args.manifest && (!args.jsonPath.empty() || !args.manifestPath.empty())) {
    runner::Manifest m = runner::makeManifest(args.tool, args.cmdline, sweep);
    m.reportPath = args.jsonPath;
    runner::writeManifestFile(args.manifestPath.empty()
                                  ? runner::manifestPathFor(args.jsonPath)
                                  : args.manifestPath,
                              m);
  }
  return records;
}

backend::CompileResult compileKernel(const std::string& name, int scale,
                                     int budget, bool memoryProp) {
  ir::Module mod = workloads::buildKernel(name, scale);
  backend::CompileOptions opts;
  opts.annotationBudget = budget;
  opts.depOptions.propagateThroughMemory = memoryProp;
  return backend::compile(mod, opts);
}

std::vector<backend::CompileResult> compileAll(
    const BenchArgs& args, const std::vector<runner::JobSpec>& specs) {
  runner::ThreadPool pool(args.jobs);
  std::vector<backend::CompileResult> results(specs.size());
  std::vector<std::future<void>> futures;
  futures.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    futures.push_back(pool.submit([&specs, &results, i] {
      const runner::JobSpec& s = specs[i];
      results[i] = compileKernel(s.kernel, s.scale, s.budget, s.memoryProp);
    }));
  runner::ThreadPool::waitAll(futures);
  return results;
}

sim::RunSummary run(const backend::CompileResult& compiled,
                    const std::string& policy, const uarch::CoreConfig& cfg) {
  return sim::runOnce(compiled.program, cfg, policy, 4'000'000'000ull);
}

void emit(const BenchArgs& args, const std::string& title, const Table& t) {
  std::cout << "== " << title << " ==\n";
  if (args.csv)
    t.printCsv(std::cout);
  else
    t.print(std::cout);
  std::cout << "\n";
}

} // namespace lev::bench
