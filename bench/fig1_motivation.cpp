// Figure 1 (reconstruction) — the paper's motivating observation.
//
// For every committed instruction on the *unrestricted* core, two flags are
// recorded at the moment it became ready to execute:
//   (a) did ANY older unresolved branch exist?         (what hardware-only
//       defenses must conservatively assume matters)
//   (b) did an older unresolved TRUE dependee exist?   (what actually
//       matters, per the compiler analysis)
// The gap between the two columns is the headroom Levioso exploits: only
// the (b) instructions ever need to wait.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const std::vector<std::string> kernels = bench::selectedKernels(args);
  Table t({"benchmark", "insts", "under unresolved branch",
           "under unresolved TRUE dependee", "loads under branch",
           "loads under TRUE dependee"});

  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels)
    specs.push_back(bench::point(args, kernel, "unsafe"));
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  std::vector<double> anyFrac, trueFrac;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& st = records[i].stats;
    auto get = [&st](const char* name) {
      const auto it = st.find(name);
      return static_cast<double>(it == st.end() ? 0 : it->second);
    };
    const double insts = get("commit.insts");
    const double any = get("commit.instsSpecAtIssue");
    const double dep = get("commit.instsTrueDepAtIssue");
    const double loads = get("commit.loads");
    const double anyL = get("commit.loadsSpecAtIssue");
    const double depL = get("commit.loadsTrueDepAtIssue");
    anyFrac.push_back(std::max(any / insts, 1e-9));
    trueFrac.push_back(std::max(dep / insts, 1e-9));
    t.addRow({kernels[i], std::to_string(static_cast<long long>(insts)),
              fmtPct(any / insts), fmtPct(dep / insts),
              fmtPct(loads > 0 ? anyL / loads : 0.0),
              fmtPct(loads > 0 ? depL / loads : 0.0)});
  }
  t.addSeparator();
  t.addRow({"geomean", "-", fmtPct(geomean(anyFrac)), fmtPct(geomean(trueFrac)),
            "-", "-"});
  bench::emit(args,
              "Figure 1: instructions issued under unresolved branches vs "
              "under true dependees (unsafe core)",
              t);
  return 0;
}
