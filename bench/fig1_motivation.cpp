// Figure 1 (reconstruction) — the paper's motivating observation.
//
// For every committed instruction on the *unrestricted* core, two flags are
// recorded at the moment it became ready to execute:
//   (a) did ANY older unresolved branch exist?         (what hardware-only
//       defenses must conservatively assume matters)
//   (b) did an older unresolved TRUE dependee exist?   (what actually
//       matters, per the compiler analysis)
// The gap between the two columns is the headroom Levioso exploits: only
// the (b) instructions ever need to wait.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  Table t({"benchmark", "insts", "under unresolved branch",
           "under unresolved TRUE dependee", "loads under branch",
           "loads under TRUE dependee"});

  std::vector<double> anyFrac, trueFrac;
  for (const std::string& kernel : bench::selectedKernels(args)) {
    const backend::CompileResult compiled =
        bench::compileKernel(kernel, args.scale);
    sim::Simulation s(compiled.program, uarch::CoreConfig(), "unsafe");
    if (s.run(4'000'000'000ull) != uarch::RunExit::Halted)
      throw SimError(kernel + ": cycle limit");
    const auto& st = s.stats();
    const double insts = static_cast<double>(st.get("commit.insts"));
    const double any = static_cast<double>(st.get("commit.instsSpecAtIssue"));
    const double dep =
        static_cast<double>(st.get("commit.instsTrueDepAtIssue"));
    const double loads = static_cast<double>(st.get("commit.loads"));
    const double anyL =
        static_cast<double>(st.get("commit.loadsSpecAtIssue"));
    const double depL =
        static_cast<double>(st.get("commit.loadsTrueDepAtIssue"));
    anyFrac.push_back(std::max(any / insts, 1e-9));
    trueFrac.push_back(std::max(dep / insts, 1e-9));
    t.addRow({kernel, std::to_string(static_cast<long long>(insts)),
              fmtPct(any / insts), fmtPct(dep / insts),
              fmtPct(loads > 0 ? anyL / loads : 0.0),
              fmtPct(loads > 0 ? depL / loads : 0.0)});
  }
  t.addSeparator();
  t.addRow({"geomean", "-", fmtPct(geomean(anyFrac)), fmtPct(geomean(trueFrac)),
            "-", "-"});
  bench::emit(args,
              "Figure 1: instructions issued under unresolved branches vs "
              "under true dependees (unsafe core)",
              t);
  return 0;
}
