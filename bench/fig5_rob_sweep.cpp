// Figure 5 (reconstruction): sensitivity to the out-of-order window.
//
// Overhead of spt vs levioso at ROB sizes 64..256 on four representative
// kernels. Bigger windows keep more unresolved branches in flight, so the
// conservative scheme's overhead grows with the window while Levioso's
// stays comparatively flat — the gap should widen.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parseArgs(argc, argv);
  if (args.kernels.empty())
    args.kernels = {"mcf_chase", "x264_sad", "lbm_stream", "gcc_branchy"};
  const std::vector<int> robSizes = {64, 128, 192, 256};
  const std::vector<std::string> kernels = bench::selectedKernels(args);

  auto configFor = [](int rob) {
    uarch::CoreConfig cfg;
    cfg.robSize = rob;
    cfg.iqSize = std::min(cfg.iqSize, rob / 2);
    cfg.lqSize = std::min(cfg.lqSize, rob / 3);
    cfg.sqSize = std::min(cfg.sqSize, rob / 4);
    return cfg;
  };

  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels)
    for (int rob : robSizes)
      for (const char* policy : {"unsafe", "spt", "levioso"})
        specs.push_back(bench::point(args, kernel, policy, configFor(rob)));
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  Table t({"benchmark", "ROB", "unsafe cycles", "spt overhead",
           "levioso overhead"});
  std::size_t at = 0;
  for (const std::string& kernel : kernels) {
    for (int rob : robSizes) {
      const sim::RunSummary& base = records[at++].summary;
      const sim::RunSummary& spt = records[at++].summary;
      const sim::RunSummary& lev = records[at++].summary;
      t.addRow({kernel, std::to_string(rob), std::to_string(base.cycles),
                fmtPct(sim::overhead(spt.cycles, base.cycles)),
                fmtPct(sim::overhead(lev.cycles, base.cycles))});
    }
    t.addSeparator();
  }
  bench::emit(args, "Figure 5: overhead vs reorder-buffer size", t);
  return 0;
}
