// Table 1 (reconstruction): threat-model coverage of every scheme.
//
// Columns mirror the comparison the paper's introduction draws between
// hardware-only defenses and Levioso: what class of secret each scheme
// protects (speculatively vs non-speculatively accessed) and whether it
// needs compiler support. The security claims in this table are *enforced*
// by tests/security_test.cpp and bench/table3_security.
#include "bench_common.hpp"
#include "secure/policies.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  Table t({"scheme", "speculative secrets", "non-speculative secrets",
           "compiler support", "description"});
  for (const std::string& name : secure::policyNames()) {
    const secure::PolicyInfo info = secure::policyInfo(name);
    t.addRow({info.name, info.protectsSpeculativeSecrets ? "yes" : "no",
              info.protectsNonSpeculativeSecrets ? "yes" : "no",
              info.needsCompilerSupport ? "yes" : "no", info.description});
  }
  bench::emit(args, "Table 1: threat-model coverage", t);
  return 0;
}
