// Figure 7 (extension): sensitivity to memory latency.
//
// Secure-speculation overhead is driven by how long branches stay
// unresolved, which on memory-bound code is the DRAM latency. Sweeping it
// shows the conservative schemes' overhead scaling with memory latency
// while Levioso's — paid only on true dependees — scales much more slowly.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parseArgs(argc, argv);
  if (args.kernels.empty())
    args.kernels = {"mcf_chase", "leela_search", "x264_sad"};
  const std::vector<int> latencies = {50, 100, 200, 400};

  Table t({"benchmark", "DRAM latency", "unsafe cycles", "spt overhead",
           "levioso overhead", "levioso/spt cycle ratio"});
  for (const std::string& kernel : bench::selectedKernels(args)) {
    const backend::CompileResult compiled =
        bench::compileKernel(kernel, args.scale);
    for (int lat : latencies) {
      uarch::CoreConfig cfg;
      cfg.mem.memLatency = lat;
      const sim::RunSummary base = bench::run(compiled, "unsafe", cfg);
      const sim::RunSummary spt = bench::run(compiled, "spt", cfg);
      const sim::RunSummary lev = bench::run(compiled, "levioso", cfg);
      t.addRow({kernel, std::to_string(lat), std::to_string(base.cycles),
                fmtPct(sim::overhead(spt.cycles, base.cycles)),
                fmtPct(sim::overhead(lev.cycles, base.cycles)),
                fmtF(static_cast<double>(lev.cycles) /
                         static_cast<double>(spt.cycles),
                     3)});
    }
    t.addSeparator();
  }
  bench::emit(args, "Figure 7: overhead vs DRAM latency", t);
  return 0;
}
