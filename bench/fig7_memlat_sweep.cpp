// Figure 7 (extension): sensitivity to memory latency.
//
// Secure-speculation overhead is driven by how long branches stay
// unresolved, which on memory-bound code is the DRAM latency. Sweeping it
// shows the conservative schemes' overhead scaling with memory latency
// while Levioso's — paid only on true dependees — scales much more slowly.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parseArgs(argc, argv);
  if (args.kernels.empty())
    args.kernels = {"mcf_chase", "leela_search", "x264_sad"};
  const std::vector<int> latencies = {50, 100, 200, 400};
  const std::vector<std::string> kernels = bench::selectedKernels(args);

  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels)
    for (int lat : latencies) {
      uarch::CoreConfig cfg;
      cfg.mem.memLatency = lat;
      for (const char* policy : {"unsafe", "spt", "levioso"})
        specs.push_back(bench::point(args, kernel, policy, cfg));
    }
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  Table t({"benchmark", "DRAM latency", "unsafe cycles", "spt overhead",
           "levioso overhead", "levioso/spt cycle ratio"});
  std::size_t at = 0;
  for (const std::string& kernel : kernels) {
    for (int lat : latencies) {
      const sim::RunSummary& base = records[at++].summary;
      const sim::RunSummary& spt = records[at++].summary;
      const sim::RunSummary& lev = records[at++].summary;
      t.addRow({kernel, std::to_string(lat), std::to_string(base.cycles),
                fmtPct(sim::overhead(spt.cycles, base.cycles)),
                fmtPct(sim::overhead(lev.cycles, base.cycles)),
                fmtF(static_cast<double>(lev.cycles) /
                         static_cast<double>(spt.cycles),
                     3)});
    }
    t.addSeparator();
  }
  bench::emit(args, "Figure 7: overhead vs DRAM latency", t);
  return 0;
}
