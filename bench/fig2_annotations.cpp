// Figure 2 (reconstruction): static annotation statistics of the Levioso
// compiler pass — dependency-set sizes and the fraction of instructions
// that overflow each hint budget.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);

  Table t({"benchmark", "static insts", "no deps", "avg set size",
           "max set size", "overflow@K=1", "overflow@K=2", "overflow@K=4",
           "overflow@K=8"});
  for (const std::string& kernel : bench::selectedKernels(args)) {
    std::vector<std::string> row;
    row.push_back(kernel);
    levioso::DepStats stats;
    std::vector<double> overflowFrac;
    for (int budget : {1, 2, 4, 8}) {
      const backend::CompileResult compiled =
          bench::compileKernel(kernel, 1, budget);
      stats = compiled.depStats;
      const double total = static_cast<double>(
          compiled.encodeStats.encoded + compiled.encodeStats.overflowed);
      overflowFrac.push_back(
          static_cast<double>(compiled.encodeStats.overflowed) / total);
    }
    row.insert(row.end(),
               {std::to_string(stats.totalInsts),
                fmtPct(static_cast<double>(stats.instsWithNoDeps) /
                       static_cast<double>(stats.totalInsts)),
                fmtF(static_cast<double>(stats.totalDepEntries) /
                         static_cast<double>(stats.totalInsts),
                     2),
                std::to_string(stats.maxSetSize)});
    for (double f : overflowFrac) row.push_back(fmtPct(f));
    t.addRow(row);
  }
  bench::emit(args, "Figure 2: true-branch-dependency set statistics", t);

  // Companion: set-size histogram over the whole suite.
  levioso::DepStats total;
  for (const std::string& kernel : bench::selectedKernels(args)) {
    const backend::CompileResult compiled = bench::compileKernel(kernel, 1);
    for (std::size_t i = 0; i < total.setSizeHistogram.size(); ++i)
      total.setSizeHistogram[i] += compiled.depStats.setSizeHistogram[i];
    total.totalInsts += compiled.depStats.totalInsts;
  }
  Table h({"set size", "static insts", "fraction"});
  for (std::size_t i = 0; i < total.setSizeHistogram.size(); ++i) {
    if (total.setSizeHistogram[i] == 0) continue;
    h.addRow({i + 1 == total.setSizeHistogram.size() ? (std::to_string(i) + "+")
                                                     : std::to_string(i),
              std::to_string(total.setSizeHistogram[i]),
              fmtPct(static_cast<double>(total.setSizeHistogram[i]) /
                     static_cast<double>(total.totalInsts))});
  }
  bench::emit(args, "Figure 2b: dependency-set size histogram (suite-wide)", h);
  return 0;
}
