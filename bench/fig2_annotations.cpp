// Figure 2 (reconstruction): static annotation statistics of the Levioso
// compiler pass — dependency-set sizes and the fraction of instructions
// that overflow each hint budget. Pure compile-time work: the kernel x
// budget grid is compiled concurrently, no simulations.
#include "bench_common.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const std::vector<std::string> kernels = bench::selectedKernels(args);
  const std::vector<int> budgets = {1, 2, 4, 8};

  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels)
    for (int budget : budgets) {
      runner::JobSpec s;
      s.kernel = kernel;
      s.scale = 1;
      s.budget = budget;
      specs.push_back(std::move(s));
    }
  const std::vector<backend::CompileResult> compiled =
      bench::compileAll(args, specs);

  Table t({"benchmark", "static insts", "no deps", "avg set size",
           "max set size", "overflow@K=1", "overflow@K=2", "overflow@K=4",
           "overflow@K=8"});
  std::size_t at = 0;
  for (const std::string& kernel : kernels) {
    std::vector<std::string> row;
    row.push_back(kernel);
    levioso::DepStats stats;
    std::vector<double> overflowFrac;
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      const backend::CompileResult& c = compiled[at++];
      stats = c.depStats;
      const double total = static_cast<double>(c.encodeStats.encoded +
                                               c.encodeStats.overflowed);
      overflowFrac.push_back(static_cast<double>(c.encodeStats.overflowed) /
                             total);
    }
    row.insert(row.end(),
               {std::to_string(stats.totalInsts),
                fmtPct(static_cast<double>(stats.instsWithNoDeps) /
                       static_cast<double>(stats.totalInsts)),
                fmtF(static_cast<double>(stats.totalDepEntries) /
                         static_cast<double>(stats.totalInsts),
                     2),
                std::to_string(stats.maxSetSize)});
    for (double f : overflowFrac) row.push_back(fmtPct(f));
    t.addRow(row);
  }
  bench::emit(args, "Figure 2: true-branch-dependency set statistics", t);

  // Companion: set-size histogram over the whole suite, from the K=4
  // compiles already in hand (budgets[2]).
  levioso::DepStats total;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const backend::CompileResult& c = compiled[i * budgets.size() + 2];
    for (std::size_t j = 0; j < total.setSizeHistogram.size(); ++j)
      total.setSizeHistogram[j] += c.depStats.setSizeHistogram[j];
    total.totalInsts += c.depStats.totalInsts;
  }
  Table h({"set size", "static insts", "fraction"});
  for (std::size_t i = 0; i < total.setSizeHistogram.size(); ++i) {
    if (total.setSizeHistogram[i] == 0) continue;
    h.addRow({i + 1 == total.setSizeHistogram.size() ? (std::to_string(i) + "+")
                                                     : std::to_string(i),
              std::to_string(total.setSizeHistogram[i]),
              fmtPct(static_cast<double>(total.setSizeHistogram[i]) /
                     static_cast<double>(total.totalInsts))});
  }
  bench::emit(args, "Figure 2b: dependency-set size histogram (suite-wide)", h);
  return 0;
}
