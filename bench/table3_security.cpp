// Table 3 (reconstruction): the security evaluation.
//
// Both attack gadgets against every policy. "leaked" means the transient
// transmission left the secret byte's probe line in the cache where the
// attacker's flush+reload probe finds it. The expected pattern (also
// enforced by tests/security_test.cpp):
//
//   gadget            unsafe fence dom  stt   spt  levioso levioso-lite
//   spectre_v1        LEAK   ok    ok   ok    ok   ok      ok
//   spectre_v2        LEAK   ok    ok   LEAK  ok   ok      LEAK
//   nonspec_secret    LEAK   ok    ok   LEAK  ok   ok      LEAK
//
// (spectre_v2 transmits a committed key byte through a mistrained indirect
// branch, so the taint-based schemes miss it just like nonspec_secret.)
//
// Attack runs have no RunSummary to cache, but they are independent, so
// the gadget x policy grid fans out on the runner's thread pool.
#include <future>

#include "bench_common.hpp"
#include "security/attack.hpp"
#include "workloads/gadgets.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const std::vector<std::string> policies = {
      "unsafe", "fence", "dom", "stt", "spt", "levioso", "levioso-lite"};
  const std::vector<std::string> gadgets = {"spectre_v1", "spectre_v2",
                                            "nonspec_secret"};

  runner::ThreadPool pool(args.jobs);
  std::vector<std::future<security::AttackResult>> attacks;
  for (const std::string& gadgetName : gadgets)
    for (const std::string& policy : policies)
      attacks.push_back(pool.submit([gadgetName, policy] {
        if (gadgetName == "spectre_v2") {
          workloads::GadgetBinary g = workloads::buildSpectreV2(0);
          return security::runAttack(g, policy);
        }
        workloads::Gadget g = gadgetName == "spectre_v1"
                                  ? workloads::buildSpectreV1(0)
                                  : workloads::buildNonSpecSecret(0);
        return security::runAttack(g, policy);
      }));

  // Companion cells run concurrently with the grid above.
  const std::vector<std::pair<std::string, std::string>> recoveries = {
      {"spectre_v1", "unsafe"},
      {"spectre_v1", "levioso"},
      {"nonspec_secret", "stt"},
      {"nonspec_secret", "levioso"}};
  std::vector<std::future<std::string>> recovered;
  for (const auto& [gadget, policy] : recoveries)
    recovered.push_back(pool.submit(
        [g = gadget, p = policy] { return security::recoverSecret(g, p); }));

  std::vector<std::string> header = {"gadget / policy"};
  for (const auto& p : policies) header.push_back(p);
  Table t(header);
  std::size_t at = 0;
  for (const std::string& gadgetName : gadgets) {
    std::vector<std::string> row = {gadgetName};
    for (std::size_t p = 0; p < policies.size(); ++p)
      row.push_back(attacks[at++].get().leaked ? "LEAKED" : "blocked");
    t.addRow(row);
  }
  bench::emit(args, "Table 3: attack outcome per gadget and policy", t);

  Table r({"gadget", "policy", "recovered secret"});
  for (std::size_t i = 0; i < recoveries.size(); ++i)
    r.addRow({recoveries[i].first, recoveries[i].second, recovered[i].get()});
  bench::emit(args, "Table 3b: byte-by-byte recovery ('?' = blocked)", r);
  return 0;
}
