// Table 3 (reconstruction): the security evaluation.
//
// Both attack gadgets against every policy. "leaked" means the transient
// transmission left the secret byte's probe line in the cache where the
// attacker's flush+reload probe finds it. The expected pattern (also
// enforced by tests/security_test.cpp):
//
//   gadget            unsafe fence dom  stt   spt  levioso levioso-lite
//   spectre_v1        LEAK   ok    ok   ok    ok   ok      ok
//   spectre_v2        LEAK   ok    ok   LEAK  ok   ok      LEAK
//   nonspec_secret    LEAK   ok    ok   LEAK  ok   ok      LEAK
//
// (spectre_v2 transmits a committed key byte through a mistrained indirect
// branch, so the taint-based schemes miss it just like nonspec_secret.)
#include "bench_common.hpp"
#include "security/attack.hpp"
#include "workloads/gadgets.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  const std::vector<std::string> policies = {
      "unsafe", "fence", "dom", "stt", "spt", "levioso", "levioso-lite"};

  std::vector<std::string> header = {"gadget / policy"};
  for (const auto& p : policies) header.push_back(p);
  Table t(header);

  for (const std::string gadgetName :
       {"spectre_v1", "spectre_v2", "nonspec_secret"}) {
    std::vector<std::string> row = {gadgetName};
    for (const auto& policy : policies) {
      security::AttackResult r;
      if (gadgetName == "spectre_v2") {
        workloads::GadgetBinary g = workloads::buildSpectreV2(0);
        r = security::runAttack(g, policy);
      } else {
        workloads::Gadget g = gadgetName == "spectre_v1"
                                  ? workloads::buildSpectreV1(0)
                                  : workloads::buildNonSpecSecret(0);
        r = security::runAttack(g, policy);
      }
      row.push_back(r.leaked ? "LEAKED" : "blocked");
    }
    t.addRow(row);
  }
  bench::emit(args, "Table 3: attack outcome per gadget and policy", t);

  // Companion: full-secret recovery strings on the interesting cells.
  Table r({"gadget", "policy", "recovered secret"});
  r.addRow({"spectre_v1", "unsafe",
            security::recoverSecret("spectre_v1", "unsafe")});
  r.addRow({"spectre_v1", "levioso",
            security::recoverSecret("spectre_v1", "levioso")});
  r.addRow({"nonspec_secret", "stt",
            security::recoverSecret("nonspec_secret", "stt")});
  r.addRow({"nonspec_secret", "levioso",
            security::recoverSecret("nonspec_secret", "levioso")});
  bench::emit(args, "Table 3b: byte-by-byte recovery ('?' = blocked)", r);
  return 0;
}
