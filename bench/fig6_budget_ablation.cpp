// Figure 6 (reconstruction): ablations of the two Levioso design choices
// DESIGN.md calls out.
//
//  (a) Annotation budget K: hints can carry at most K dependees; overflow
//      means conservative restriction. K=0 must converge to spt-like cost;
//      K=unlimited is the precision ceiling.
//  (b) Memory-dependence propagation: disabling it shrinks dependency sets
//      (lower overhead) but is UNSOUND — tests/levioso_test.cpp shows the
//      laundering gadget dependency disappearing. The row is here to
//      quantify what that soundness costs.
#include "bench_common.hpp"
#include "levioso/annotation.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  struct Variant {
    std::string label;
    int budget;
    bool memProp;
  };
  const std::vector<Variant> variants = {
      {"K=0 (all overflow)", 0, true}, {"K=1", 1, true},
      {"K=2", 2, true},                {"K=4 (default)", 4, true},
      {"K=8", 8, true},                {"K=inf", levioso::kUnlimitedBudget, true},
      {"K=inf, no mem-dep (UNSOUND)", levioso::kUnlimitedBudget, false},
  };

  std::vector<std::string> header = {"variant"};
  for (const std::string& kernel : bench::selectedKernels(args))
    header.push_back(kernel);
  header.push_back("geomean");
  Table t(header);

  // Baselines per kernel.
  std::map<std::string, std::uint64_t> baseCycles;
  for (const std::string& kernel : bench::selectedKernels(args)) {
    const backend::CompileResult compiled =
        bench::compileKernel(kernel, args.scale);
    baseCycles[kernel] = bench::run(compiled, "unsafe").cycles;
  }

  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.label};
    std::vector<double> slowdowns;
    for (const std::string& kernel : bench::selectedKernels(args)) {
      const backend::CompileResult compiled =
          bench::compileKernel(kernel, args.scale, v.budget, v.memProp);
      const sim::RunSummary s = bench::run(compiled, "levioso");
      const double slowdown = static_cast<double>(s.cycles) /
                              static_cast<double>(baseCycles[kernel]);
      slowdowns.push_back(slowdown);
      row.push_back(fmtPct(slowdown - 1.0));
    }
    row.push_back(fmtPct(geomean(slowdowns) - 1.0));
    t.addRow(row);
  }
  bench::emit(args, "Figure 6: Levioso overhead vs annotation budget and "
                    "memory-dependence ablation",
              t);
  return 0;
}
