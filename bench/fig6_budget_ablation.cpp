// Figure 6 (reconstruction): ablations of the two Levioso design choices
// DESIGN.md calls out.
//
//  (a) Annotation budget K: hints can carry at most K dependees; overflow
//      means conservative restriction. K=0 must converge to spt-like cost;
//      K=unlimited is the precision ceiling.
//  (b) Memory-dependence propagation: disabling it shrinks dependency sets
//      (lower overhead) but is UNSOUND — tests/levioso_test.cpp shows the
//      laundering gadget dependency disappearing. The row is here to
//      quantify what that soundness costs.
#include "bench_common.hpp"
#include "levioso/annotation.hpp"
#include "support/strings.hpp"

using namespace lev;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parseArgs(argc, argv);
  struct Variant {
    std::string label;
    int budget;
    bool memProp;
  };
  const std::vector<Variant> variants = {
      {"K=0 (all overflow)", 0, true}, {"K=1", 1, true},
      {"K=2", 2, true},                {"K=4 (default)", 4, true},
      {"K=8", 8, true},                {"K=inf", levioso::kUnlimitedBudget, true},
      {"K=inf, no mem-dep (UNSOUND)", levioso::kUnlimitedBudget, false},
  };
  const std::vector<std::string> kernels = bench::selectedKernels(args);

  // Baselines first, then one levioso point per (variant, kernel), all in
  // one sweep — the runner compiles each (kernel, budget, memProp) once.
  std::vector<runner::JobSpec> specs;
  for (const std::string& kernel : kernels)
    specs.push_back(bench::point(args, kernel, "unsafe"));
  for (const Variant& v : variants)
    for (const std::string& kernel : kernels) {
      runner::JobSpec s = bench::point(args, kernel, "levioso");
      s.budget = v.budget;
      s.memoryProp = v.memProp;
      specs.push_back(std::move(s));
    }
  const std::vector<runner::RunRecord> records = bench::runAll(args, specs);

  std::vector<std::string> header = {"variant"};
  for (const std::string& kernel : kernels) header.push_back(kernel);
  header.push_back("geomean");
  Table t(header);

  std::size_t at = kernels.size();
  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.label};
    std::vector<double> slowdowns;
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      const double slowdown =
          static_cast<double>(records[at++].summary.cycles) /
          static_cast<double>(records[k].summary.cycles);
      slowdowns.push_back(slowdown);
      row.push_back(fmtPct(slowdown - 1.0));
    }
    row.push_back(fmtPct(geomean(slowdowns) - 1.0));
    t.addRow(row);
  }
  bench::emit(args, "Figure 6: Levioso overhead vs annotation budget and "
                    "memory-dependence ablation",
              t);
  return 0;
}
